//! The kernel simulator: process/port state, spawning, and the god-mode
//! surface. The delivery engine (scheduler, Figure 4 evaluation, decision
//! cache) lives in [`crate::delivery`].

use std::collections::BTreeMap;
use std::sync::Arc;

use asbestos_labels::{ops, Handle, Label};

use crate::cycles::{Category, CostModel, CycleClock, CycleSnapshot};
use crate::delivery::{DeliveryCache, Mailboxes, DEFAULT_DELIVERY_CACHE_CAP};
use crate::event_process::EventProcess;
use crate::handle_table::{HandleTable, PortOwner};
use crate::ids::{EpId, ExecCtx, ProcessId};
use crate::memory::{FramePool, PAGE_SIZE};
use crate::message::{Message, QueuedMessage, SendArgs};
use crate::process::{Body, EpService, Process, Service};
use crate::stats::{DropReason, Stats};
use crate::sys::Sys;
use crate::value::Value;

/// Default bound on queued messages (the resource-exhaustion backstop §8
/// mentions; drops past this limit are silent, like label drops).
pub const DEFAULT_QUEUE_LIMIT: usize = 1 << 20;

/// A point-in-time memory accounting report (the Figure 6 measurement).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmemReport {
    /// Process structures plus their labels.
    pub process_bytes: usize,
    /// Event-process structures plus their labels.
    pub ep_bytes: usize,
    /// Vnodes plus port labels.
    pub handle_bytes: usize,
    /// Queued, undelivered messages.
    pub queue_bytes: usize,
    /// The delivery-decision cache: keys plus retained effect labels.
    pub delivery_cache_bytes: usize,
    /// User memory: allocated 4 KiB frames (base tables and EP deltas).
    pub user_frame_bytes: usize,
}

impl KmemReport {
    /// Total allocated bytes, kernel plus user.
    pub fn total_bytes(&self) -> usize {
        self.process_bytes
            + self.ep_bytes
            + self.handle_bytes
            + self.queue_bytes
            + self.delivery_cache_bytes
            + self.user_frame_bytes
    }

    /// Total memory in 4 KiB pages, rounded up (Figure 6's unit).
    pub fn total_pages(&self) -> usize {
        self.total_bytes().div_ceil(PAGE_SIZE)
    }
}

/// The Asbestos kernel simulator.
///
/// A `Kernel` owns every process, event process, port, queued message, and
/// simulated page, plus the virtual cycle clock. It is deterministic: the
/// same spawn order, injections, and seed produce the same schedule, cycle
/// counts, and memory report.
///
/// Drive it by [`Kernel::spawn`]ing services, [`Kernel::inject`]ing external
/// events, and calling [`Kernel::run`].
pub struct Kernel {
    pub(crate) cost: CostModel,
    pub(crate) clock: CycleClock,
    pub(crate) handles: HandleTable,
    pub(crate) processes: Vec<Process>,
    pub(crate) eps: Vec<EventProcess>,
    pub(crate) frames: FramePool,
    pub(crate) mailboxes: Mailboxes,
    pub(crate) queue_limit: usize,
    pub(crate) delivery_cache: DeliveryCache,
    pub(crate) stats: Stats,
    pub(crate) global_env: BTreeMap<String, Value>,
    pub(crate) last_ctx: Option<ExecCtx>,
}

impl Kernel {
    /// Creates a kernel with the default cost model; `seed` keys the handle
    /// cipher.
    pub fn new(seed: u64) -> Kernel {
        Kernel::with_cost_model(seed, CostModel::default())
    }

    /// Creates a kernel with an explicit cost model.
    pub fn with_cost_model(seed: u64, cost: CostModel) -> Kernel {
        Kernel {
            cost,
            clock: CycleClock::new(),
            handles: HandleTable::new(seed),
            processes: Vec::new(),
            eps: Vec::new(),
            frames: FramePool::new(),
            mailboxes: Mailboxes::default(),
            queue_limit: DEFAULT_QUEUE_LIMIT,
            delivery_cache: DeliveryCache::new(DEFAULT_DELIVERY_CACHE_CAP),
            stats: Stats::default(),
            global_env: BTreeMap::new(),
            last_ctx: None,
        }
    }

    // ------------------------------------------------------------------
    // Spawning.
    // ------------------------------------------------------------------

    /// Spawns an ordinary service process with default labels and empty
    /// environment, then runs its `on_start` hook.
    pub fn spawn(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> ProcessId {
        self.spawn_body(name, category, Body::Plain(service), None)
    }

    /// Spawns an event-process service (§6): after `on_base_start` returns,
    /// every message to a base-owned port forks a fresh event process.
    pub fn spawn_ep_service(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> ProcessId {
        self.spawn_body(name, category, Body::Event(service), None)
    }

    pub(crate) fn spawn_body(
        &mut self,
        name: &str,
        category: Category,
        body: Body,
        inherit_from: Option<ProcessId>,
    ) -> ProcessId {
        let mut proc = Process::new(name, category, body);
        if let Some(parent) = inherit_from {
            let p = &self.processes[parent.index()];
            // Fork semantics: the child inherits the parent's labels (§5.3's
            // "either by forking or using ... decontamination") and env.
            proc.send_label = p.send_label.clone();
            proc.recv_label = p.recv_label.clone();
            proc.env = p.env.clone();
        }
        self.processes.push(proc);
        let pid = ProcessId((self.processes.len() - 1) as u32);
        // Run the start hook in the new process's (base) context.
        let mut body = self.processes[pid.index()]
            .body
            .take()
            .expect("freshly spawned process has a body");
        {
            let mut sys = Sys::new(self, ExecCtx { pid, ep: None }, false);
            match &mut body {
                Body::Plain(s) => s.on_start(&mut sys),
                Body::Event(s) => s.on_base_start(&mut sys),
            }
        }
        if self.processes[pid.index()].alive {
            self.processes[pid.index()].body = Some(body);
        }
        pid
    }

    // ------------------------------------------------------------------
    // External world (god-mode).
    // ------------------------------------------------------------------

    /// Injects a message from outside the label system (device interrupts,
    /// test drivers). Injected messages carry `E_S = {⋆}` and therefore pass
    /// every label check — they model hardware, not processes.
    pub fn inject(&mut self, port: Handle, body: Value) {
        self.stats.injected += 1;
        self.mailboxes.push(QueuedMessage {
            port,
            body,
            es: Arc::new(Label::bottom()),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::top(),
            from: None,
        });
    }

    /// Sets a global environment entry (the §4 bootstrapping namespace,
    /// written by init/launcher-level code).
    pub fn set_global_env(&mut self, key: &str, value: Value) {
        self.global_env.insert(key.to_string(), value);
    }

    /// Sets the message-queue bound. Sends past the bound drop silently,
    /// the same way label failures do (§4, §8). The bound covers all
    /// mailboxes together, like the single queue it generalizes.
    pub fn set_queue_limit(&mut self, limit: usize) {
        self.queue_limit = limit;
    }

    /// Sets the delivery-decision cache bound, in cached decisions.
    /// Capacity 0 disables caching entirely (every delivery evaluates
    /// Figure 4 from scratch — the ablation baseline).
    pub fn set_delivery_cache_capacity(&mut self, capacity: usize) {
        self.delivery_cache.set_capacity(capacity);
    }

    /// Number of currently cached delivery decisions.
    pub fn delivery_cache_len(&self) -> usize {
        self.delivery_cache.len()
    }

    /// Reads a global environment entry.
    pub fn global_env(&self, key: &str) -> Option<&Value> {
        self.global_env.get(key)
    }

    /// Assigns process labels out of band (god-mode).
    ///
    /// §5.2 introduces its examples with labels "assigned out of band";
    /// tests and fixtures use this for the same purpose. Simulated services
    /// can never do this — they go through the Figure 4 rules.
    pub fn set_process_labels(&mut self, pid: ProcessId, send: Option<Label>, recv: Option<Label>) {
        let p = &mut self.processes[pid.index()];
        if let Some(s) = send {
            p.send_label = Arc::new(s);
        }
        if let Some(r) = recv {
            p.recv_label = Arc::new(r);
        }
    }

    /// Forcibly terminates a process (god-mode; used for failure injection).
    pub fn kill_process(&mut self, pid: ProcessId) {
        if self.processes[pid.index()].alive {
            self.processes[pid.index()].alive = false;
            self.processes[pid.index()].body = None;
            self.cleanup_process(pid);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling. (`step` itself lives in `delivery.rs` with the rest of
    // the delivery engine.)
    // ------------------------------------------------------------------

    /// Runs until the queue drains, with a safety bound; returns the number
    /// of delivery attempts.
    ///
    /// # Panics
    ///
    /// Panics after `limit` steps — two services ping-ponging messages
    /// forever is a bug in simulated code, not a state to spin in.
    pub fn run_limited(&mut self, limit: u64) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
            assert!(
                steps < limit,
                "kernel did not go idle after {limit} deliveries: livelock in simulated services?"
            );
        }
        steps
    }

    /// Runs until idle with a generous default bound.
    pub fn run(&mut self) -> u64 {
        self.run_limited(100_000_000)
    }

    // ------------------------------------------------------------------
    // Internal machinery.
    // ------------------------------------------------------------------

    pub(crate) fn create_ep(&mut self, pid: ProcessId) -> EpId {
        let p = &self.processes[pid.index()];
        // `Arc` bumps: the EP shares the base's label storage until either
        // side's labels change.
        let ep = EventProcess::new(pid, Arc::clone(&p.send_label), Arc::clone(&p.recv_label));
        self.eps.push(ep);
        let eid = EpId((self.eps.len() - 1) as u32);
        self.processes[pid.index()].eps.push(eid);
        self.stats.eps_created += 1;
        self.clock.charge(Category::KernelIpc, self.cost.ep_create);
        eid
    }

    pub(crate) fn invoke(
        &mut self,
        pid: ProcessId,
        ep: Option<EpId>,
        is_new_ep: bool,
        msg: &Message,
    ) {
        let Some(mut body) = self.processes[pid.index()].body.take() else {
            return;
        };
        {
            let mut sys = Sys::new(self, ExecCtx { pid, ep }, is_new_ep);
            match &mut body {
                Body::Plain(s) => s.on_message(&mut sys, msg),
                Body::Event(s) => s.on_event(&mut sys, msg),
            }
        }
        if self.processes[pid.index()].alive {
            self.processes[pid.index()].body = Some(body);
        } else {
            drop(body);
            self.cleanup_process(pid);
            return;
        }
        if let Some(eid) = ep {
            if !self.eps[eid.index()].alive {
                self.cleanup_ep(eid);
            }
        }
    }

    pub(crate) fn cleanup_ep(&mut self, eid: EpId) {
        let pid = self.eps[eid.index()].process;
        for frame in self.eps[eid.index()].delta.drain_all() {
            self.frames.release(frame);
        }
        let ports: Vec<Handle> = std::mem::take(&mut self.eps[eid.index()].ports);
        for port in ports {
            self.handles.dissociate(port);
        }
        self.eps[eid.index()].alive = false;
        self.processes[pid.index()].eps.retain(|&e| e != eid);
        self.stats.eps_exited += 1;
    }

    pub(crate) fn cleanup_process(&mut self, pid: ProcessId) {
        let eps: Vec<EpId> = self.processes[pid.index()].eps.clone();
        for eid in eps {
            self.cleanup_ep(eid);
        }
        for port in self.handles.ports_owned_by(PortOwner::Process(pid)) {
            self.handles.dissociate(port);
        }
        let table = std::mem::take(&mut self.processes[pid.index()].page_table);
        for (_, frame) in table.iter() {
            self.frames.release(frame);
        }
        self.processes[pid.index()].alive = false;
    }

    // ------------------------------------------------------------------
    // God-mode observability.
    // ------------------------------------------------------------------

    /// Kernel statistics (delivery and drop counters).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The virtual clock.
    pub fn clock(&self) -> &CycleClock {
        &self.clock
    }

    /// Snapshot of the clock for interval measurements.
    pub fn cycle_snapshot(&self) -> CycleSnapshot {
        self.clock.snapshot()
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Read-only access to a process.
    pub fn process(&self, pid: ProcessId) -> &Process {
        &self.processes[pid.index()]
    }

    /// Read-only access to an event process.
    pub fn event_process(&self, eid: EpId) -> &EventProcess {
        &self.eps[eid.index()]
    }

    /// All live event-process ids for a process.
    pub fn live_eps(&self, pid: ProcessId) -> Vec<EpId> {
        self.processes[pid.index()].eps.clone()
    }

    /// Total event processes ever created.
    pub fn ep_count(&self) -> usize {
        self.eps.len()
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Finds a process by debug name (god-mode test convenience).
    pub fn find_process(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProcessId(i as u32))
    }

    /// The handle table (ports, vnodes).
    pub fn handle_table(&self) -> &HandleTable {
        &self.handles
    }

    /// Pending (sent but undelivered) messages across all mailboxes.
    pub fn queue_len(&self) -> usize {
        self.mailboxes.len()
    }

    /// Pending messages sent by a given process (god-mode; used by tests to
    /// verify that compromised services actually attempted exfiltration).
    pub fn queued_from(&self, pid: ProcessId) -> usize {
        self.mailboxes
            .iter()
            .filter(|m| m.from.is_some_and(|c| c.pid == pid))
            .count()
    }

    /// Downcasts a process's service body for test inspection.
    pub fn service_as<T: 'static>(&self, pid: ProcessId) -> Option<&T> {
        match self.processes[pid.index()].body.as_ref()? {
            Body::Plain(s) => s.as_any()?.downcast_ref::<T>(),
            Body::Event(s) => s.as_any()?.downcast_ref::<T>(),
        }
    }

    /// Memory accounting across all kernel structures and user frames
    /// (Figure 6's measurement).
    pub fn kmem_report(&self) -> KmemReport {
        let process_bytes = self
            .processes
            .iter()
            .filter(|p| p.alive)
            .map(Process::kernel_bytes)
            .sum();
        let ep_bytes = self
            .eps
            .iter()
            .filter(|e| e.alive)
            .map(EventProcess::kernel_bytes)
            .sum();
        let handle_bytes = self.handles.kernel_bytes();
        let queue_bytes = self.mailboxes.iter().map(QueuedMessage::queue_bytes).sum();
        let delivery_cache_bytes = self.delivery_cache.bytes();
        let user_frame_bytes = self.frames.frames_in_use() * PAGE_SIZE;
        KmemReport {
            process_bytes,
            ep_bytes,
            handle_bytes,
            queue_bytes,
            delivery_cache_bytes,
            user_frame_bytes,
        }
    }
}

// The send path lives here (rather than in `sys.rs`) so all queue policy is
// in one file.
impl Kernel {
    pub(crate) fn send_from(
        &mut self,
        ctx: ExecCtx,
        port: Handle,
        body: Value,
        args: &SendArgs,
    ) -> Result<(), crate::error::SysError> {
        let category = self.processes[ctx.pid.index()].category;
        let ps: &Arc<Label> = match ctx.ep {
            Some(eid) => &self.eps[eid.index()].send_label,
            None => &self.processes[ctx.pid.index()].send_label,
        };

        // Charge send cost up front: base + payload + label argument
        // processing. Privilege-failing sends still did this work in the
        // simulated kernel, so they are charged too.
        let label_work = (args.label_work() + ps.entry_count() + 1) as u64;
        self.clock.charge(Category::KernelIpc, self.cost.send_base);
        self.clock.charge(
            Category::KernelIpc,
            body.size_bytes() as u64 * self.cost.msg_byte + label_work * self.cost.label_entry,
        );
        let _ = category;

        // Figure 4 requirement (2): D_S(h) < 3 ⇒ P_S(h) = ⋆.
        if !ops::check_decont_send_privilege(&args.decont_send, ps) {
            return Err(crate::error::SysError::PrivilegeViolation);
        }
        // Figure 4 requirement (3): D_R(h) > ⋆ ⇒ P_S(h) = ⋆.
        if !ops::check_decont_recv_privilege(&args.decont_recv, ps) {
            return Err(crate::error::SysError::PrivilegeViolation);
        }

        // E_S = P_S ⊔ C_S, snapshotted now; delivery checks happen when the
        // receiver is scheduled (§4: delivery is decided at receive time).
        // A no-op C_S — the common case — shares P_S by reference, which
        // also keeps E_S's fingerprint stable across sends and is what
        // makes the delivery cache hit for repeated traffic.
        // (`is_all_star` implies uniform: entries at the default level are
        // normalized away, so an all-star label has no explicit entries.)
        let es = if args.contaminate.is_all_star() {
            Arc::clone(ps)
        } else {
            Arc::new(ops::effective_send(ps, &args.contaminate))
        };

        if self.mailboxes.len() >= self.queue_limit {
            // Resource exhaustion drops are silent, like label drops (§4).
            self.stats.record_drop(DropReason::QueueFull);
            return Ok(());
        }
        self.stats.sent += 1;
        self.mailboxes.push(QueuedMessage {
            port,
            body,
            es,
            ds: args.decont_send.clone(),
            dr: args.decont_recv.clone(),
            v: args.verify.clone(),
            from: Some(ctx),
        });
        Ok(())
    }
}
