//! The delivery engine: per-port mailboxes, the Figure 4 evaluation, and
//! the fingerprint-keyed delivery-decision cache.
//!
//! Split out of `kernel.rs` so all delivery policy lives in one place:
//!
//! * [`Mailboxes`] — the queued-message store, one FIFO per destination
//!   port, drained by a deterministic round-robin scheduler. Per-port
//!   queues are the structural prerequisite for sharding the delivery
//!   engine: two ports' traffic shares no queue state.
//! * [`DeliveryCache`] — memoizes full Figure 4 evaluations keyed on
//!   [`ops::DeliveryKey`] (the structural fingerprints of all seven labels
//!   a delivery reads). A hit replays both the decision *and* the effect
//!   labels in O(1), without cloning a single label — effect labels are
//!   stored and installed as `Arc<Label>`.
//! * [`DeliveryOutcome`] — what one scheduler step did; the per-step
//!   `Stats` bookkeeping happens in exactly one place
//!   ([`KernelShard::step_outcome`]) instead of at every drop site.
//!
//! Since the kernel was sharded, the engine below runs *per shard*: each
//! [`KernelShard`] drains its own mailboxes against its own processes,
//! ports, cache, and clock, so N shards run N of these loops on parallel
//! pool workers without sharing mutable delivery state. Cross-shard
//! sends are pushed straight into the destination shard's inbound
//! channel and pulled at deterministic points of its drain loop —
//! sub-round routing (see `router.rs` and `kernel.rs`).
//!
//! The cache is semantically invisible: fingerprints identify label
//! *contents*, so label mutation anywhere simply produces different keys —
//! there is nothing to invalidate, and a covert-channel regression test
//! pins that cached and uncached runs drop exactly the same messages.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use asbestos_labels::{ops, ops::DeliveryKey, Handle, Label};

use crate::cycles::Category;
use crate::handle_table::PortOwner;
use crate::ids::ExecCtx;
use crate::message::{Message, QueuedMessage};
use crate::router::{PullPoint, Router};
use crate::shard::KernelShard;
use crate::stats::DropReason;

/// Default bound on cached delivery decisions.
pub const DEFAULT_DELIVERY_CACHE_CAP: usize = 1 << 16;

/// Parses a per-shard cache bound from an `ASBESTOS_CACHE_CAP`-style
/// value; anything unset or unparsable falls back to the compiled-in
/// default. `0` is legal and disables caching entirely.
pub(crate) fn cache_cap_from(value: Option<&str>) -> usize {
    crate::knobs::parse_count(value).unwrap_or(DEFAULT_DELIVERY_CACHE_CAP)
}

/// The per-shard delivery-cache bound newly-built kernels start with:
/// `ASBESTOS_CACHE_CAP` when set (operator knob for per-shard cache
/// sizing experiments), else [`DEFAULT_DELIVERY_CACHE_CAP`]. Note the
/// golden-trace suites pin cache counters under the default, so CI sets
/// this only for jobs that do not compare against golden stats.
pub(crate) fn default_cache_cap() -> usize {
    cache_cap_from(crate::knobs::raw(crate::knobs::CACHE_CAP_ENV).as_deref())
}

/// What one call to [`crate::Kernel::step_outcome`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// No message was pending; the system is idle.
    Idle,
    /// A message was popped and silently dropped.
    Dropped(DropReason),
    /// A message was delivered and its handler ran.
    Delivered,
}

// ---------------------------------------------------------------------
// Per-port mailboxes.
// ---------------------------------------------------------------------

/// Queued, undelivered messages: one FIFO per destination port, drained
/// round-robin in port-activation order.
///
/// Scheduling is deterministic: ports enter the rotation when their first
/// message arrives, each scheduler step takes one message from the front
/// port, and a port with messages left re-enters at the back of the
/// rotation. Messages to one port always deliver in send order.
#[derive(Default)]
pub(crate) struct Mailboxes {
    boxes: BTreeMap<Handle, VecDeque<QueuedMessage>>,
    /// Ports with pending messages, in rotation order.
    rotation: VecDeque<Handle>,
    /// Total pending messages across all ports.
    len: usize,
    /// When set, `push` maintains the per-port arrival counters the
    /// tuner's hot-port detection reads. Off by default so the golden
    /// single-shard traces never see the bookkeeping.
    track_load: bool,
    /// Deepest the store has ever been (messages pending at once).
    /// Tracked unconditionally — one compare per push.
    depth_hwm: usize,
    /// Messages pushed per destination port since the last
    /// [`Mailboxes::take_port_arrivals`]. Only fed when `track_load`.
    port_arrivals: BTreeMap<Handle, u64>,
}

impl Mailboxes {
    /// Appends a message to its destination port's mailbox.
    pub fn push(&mut self, qm: QueuedMessage) {
        if self.track_load {
            *self.port_arrivals.entry(qm.port).or_insert(0) += 1;
        }
        let mailbox = self.boxes.entry(qm.port).or_default();
        if mailbox.is_empty() {
            self.rotation.push_back(qm.port);
        }
        mailbox.push_back(qm);
        self.len += 1;
        if self.len > self.depth_hwm {
            self.depth_hwm = self.len;
        }
    }

    /// Takes the next message in round-robin order.
    pub fn pop_next(&mut self) -> Option<QueuedMessage> {
        let port = self.rotation.pop_front()?;
        let mailbox = self
            .boxes
            .get_mut(&port)
            .expect("rotation only holds ports with mailboxes");
        let qm = mailbox
            .pop_front()
            .expect("rotation only holds non-empty mailboxes");
        if mailbox.is_empty() {
            self.boxes.remove(&port);
        } else {
            self.rotation.push_back(port);
        }
        self.len -= 1;
        Some(qm)
    }

    /// Total pending messages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Pending messages for one destination port (the per-port
    /// backpressure bound checks this).
    pub fn port_len(&self, port: Handle) -> usize {
        self.boxes.get(&port).map_or(0, VecDeque::len)
    }

    /// Iterates all pending messages (accounting and god-mode stats; no
    /// delivery-order meaning).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedMessage> {
        self.boxes.values().flatten()
    }

    /// Removes a port's entire pending queue (and its rotation slot) in
    /// one piece. Work stealing moves whole per-port queues — never
    /// individual messages — so the per-sender-per-port FIFO order is
    /// preserved verbatim by construction.
    pub fn take_port_queue(&mut self, port: Handle) -> VecDeque<QueuedMessage> {
        let Some(queue) = self.boxes.remove(&port) else {
            return VecDeque::new();
        };
        self.rotation.retain(|&p| p != port);
        self.len -= queue.len();
        queue
    }

    /// Adopts a whole queue for `port`, appending after anything already
    /// pending there (in-flight messages routed before a migration land
    /// first; the stolen backlog keeps its internal order).
    pub fn push_queue(&mut self, port: Handle, queue: VecDeque<QueuedMessage>) {
        if queue.is_empty() {
            return;
        }
        if self.track_load {
            *self.port_arrivals.entry(port).or_insert(0) += queue.len() as u64;
        }
        let mailbox = self.boxes.entry(port).or_default();
        if mailbox.is_empty() {
            self.rotation.push_back(port);
        }
        self.len += queue.len();
        mailbox.extend(queue);
        if self.len > self.depth_hwm {
            self.depth_hwm = self.len;
        }
    }

    /// Enables or disables per-port arrival counting (tuner signal).
    pub fn set_track_load(&mut self, on: bool) {
        self.track_load = on;
        if !on {
            self.port_arrivals.clear();
        }
    }

    /// Deepest this mailbox set has ever been.
    pub fn depth_hwm(&self) -> usize {
        self.depth_hwm
    }

    /// Drains the per-port arrival counters accumulated since the last
    /// call (the tuner reads one observation window at a time).
    pub fn take_port_arrivals(&mut self) -> BTreeMap<Handle, u64> {
        std::mem::take(&mut self.port_arrivals)
    }
}

// ---------------------------------------------------------------------
// The delivery-decision cache.
// ---------------------------------------------------------------------

/// A memoized Figure 4 evaluation.
#[derive(Clone)]
enum CachedOutcome {
    /// The delivery checks failed with this reason.
    Drop(DropReason),
    /// The checks passed; these are the Figure 4 effect labels.
    Deliver {
        /// `Q_S ← (Q_S ⊓ D_S) ⊔ (E_S ⊓ Q_S⋆)`.
        new_qs: Arc<Label>,
        /// `Q_R ← Q_R ⊔ D_R`.
        new_qr: Arc<Label>,
    },
}

/// Bounded memoization of delivery decisions and effects, keyed on the
/// structural fingerprints of the seven labels one delivery reads.
///
/// Eviction is FIFO over insertion order — deterministic and O(1), which
/// matters more here than LRU's hit rate: the workload this cache exists
/// for (OKWS-style repeated traffic) has a small working set of hot
/// tuples, and determinism is a simulator invariant.
pub(crate) struct DeliveryCache {
    map: HashMap<DeliveryKey, CachedOutcome>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<DeliveryKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DeliveryCache {
    pub fn new(capacity: usize) -> DeliveryCache {
        DeliveryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Changes the bound; shrinking evicts oldest entries immediately.
    /// Capacity 0 disables the cache entirely.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_oldest();
        }
    }

    fn lookup(&mut self, key: &DeliveryKey) -> Option<CachedOutcome> {
        if self.capacity == 0 {
            return None;
        }
        match self.map.get(key) {
            Some(outcome) => {
                self.hits += 1;
                Some(outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: DeliveryKey, outcome: CachedOutcome) {
        if self.capacity == 0 {
            return;
        }
        if let Entry::Vacant(slot) = self.map.entry(key) {
            slot.insert(outcome);
            self.order.push_back(key);
            if self.map.len() > self.capacity {
                self.evict_oldest();
            }
        }
    }

    fn evict_oldest(&mut self) {
        if let Some(oldest) = self.order.pop_front() {
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Accounted bytes: map entries plus the retained effect labels.
    /// Shared `Arc<Label>`s are charged in full to the cache, matching how
    /// every other refcounted kernel structure is billed (see
    /// [`Label::heap_bytes`]).
    pub fn bytes(&self) -> usize {
        // Key (7×8) + order entry (7×8) + map slot overhead.
        const ENTRY_BYTES: usize = 56 + 56 + 16;
        self.map
            .values()
            .map(|outcome| match outcome {
                CachedOutcome::Drop(_) => ENTRY_BYTES,
                CachedOutcome::Deliver { new_qs, new_qr } => {
                    ENTRY_BYTES + new_qs.heap_bytes() + new_qr.heap_bytes()
                }
            })
            .sum()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Current bound, in cached decisions (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

// ---------------------------------------------------------------------
// The delivery engine.
// ---------------------------------------------------------------------

impl KernelShard {
    /// Attempts one message delivery and reports what happened.
    ///
    /// All per-step `Stats` bookkeeping lives here: drop reasons, the
    /// delivered counter, and the cache counters are recorded in one
    /// place, so the delivery logic below returns outcomes instead of
    /// mutating counters at every exit point.
    pub(crate) fn step_outcome(&mut self, router: &Router) -> DeliveryOutcome {
        let Some(qm) = self.mailboxes.pop_next() else {
            return DeliveryOutcome::Idle;
        };
        self.clock.charge(Category::KernelIpc, self.cost.recv_base);
        let outcome = self.deliver(router, qm);
        match outcome {
            DeliveryOutcome::Dropped(reason) => self.stats.record_drop(reason),
            DeliveryOutcome::Delivered => self.stats.delivered += 1,
            DeliveryOutcome::Idle => unreachable!("a message was popped"),
        }
        let (hits, misses, evictions) = self.delivery_cache.counters();
        self.stats.cache_hits = hits;
        self.stats.cache_misses = misses;
        self.stats.cache_evictions = evictions;
        outcome
    }

    /// Drains this shard until locally quiescent or until `budget` steps
    /// have run; returns `(steps, hit_budget)`. Local sends issued by
    /// handlers keep the drain going (exactly the monolithic engine's
    /// behavior); cross-shard sends are pushed straight into their
    /// destination's inbound channel, and whenever this shard's own
    /// mailboxes empty it pulls *its* inbound channel and keeps going —
    /// sub-round routing, which spares a cross-shard chain one full round
    /// of latency per hop. `entry_pull` classifies messages found on the
    /// first pull (they waited out a barrier when the pooled scheduler
    /// calls this; see [`crate::router::PullPoint`]).
    ///
    /// The time the loop runs is accumulated into `busy_nanos`: shards
    /// model parallel cores, and the busiest shard's real busy time is
    /// the wall-clock bound an adequately-cored host would observe.
    pub(crate) fn drain_round(
        &mut self,
        router: &Router,
        budget: u64,
        entry_pull: PullPoint,
    ) -> (u64, bool) {
        let start = std::time::Instant::now();
        let mut steps = 0;
        let mut pull = entry_pull;
        let hit_budget = loop {
            self.pull_inbound(pull);
            pull = PullPoint::Subround;
            // Re-admit parked retries while capacity lasts (a no-op
            // unless backpressure is armed and something is parked).
            self.flush_retries(router);
            if self.mailboxes.len() == 0 {
                break false;
            }
            while self.mailboxes.len() > 0 {
                if steps >= budget {
                    break;
                }
                self.step_outcome(router);
                steps += 1;
            }
            if steps >= budget && self.mailboxes.len() > 0 {
                break true;
            }
        };
        self.busy_nanos += start.elapsed().as_nanos() as u64;
        (steps, hit_budget)
    }

    /// Evaluates Figure 4 for one popped message and, if it passes,
    /// invokes the receiver.
    fn deliver(&mut self, router: &Router, qm: QueuedMessage) -> DeliveryOutcome {
        // Resolve the destination port.
        let Some(port_state) = self.handles.port(qm.port) else {
            return DeliveryOutcome::Dropped(DropReason::NoSuchPort);
        };
        let Some(owner) = port_state.owner else {
            return DeliveryOutcome::Dropped(DropReason::NoOwner);
        };

        // Resolve the receiving context; the labels checked are the event
        // process's when one owns the port, otherwise the base process's
        // (which are also what a freshly forked event process would start
        // with, so checking base labels is exact for the to-be-created EP).
        let (pid, existing_ep) = match owner {
            PortOwner::Process(pid) => {
                if !self.processes[pid.index()].alive {
                    return DeliveryOutcome::Dropped(DropReason::NoOwner);
                }
                (pid, None)
            }
            PortOwner::Ep(eid) => {
                let ep = &self.eps[eid.index()];
                if !ep.alive {
                    return DeliveryOutcome::Dropped(DropReason::NoOwner);
                }
                (ep.process, Some(eid))
            }
        };

        // Borrow (never clone) every label the evaluation reads.
        let (qs, qr): (&Label, &Label) = match existing_ep {
            Some(eid) => (
                &self.eps[eid.index()].send_label,
                &self.eps[eid.index()].recv_label,
            ),
            None => (
                &self.processes[pid.index()].send_label,
                &self.processes[pid.index()].recv_label,
            ),
        };
        let pr = &port_state.label;

        // The memoization key covers all seven labels: the checks read
        // (E_S, D_R, V, p_R, Q_R) and the effects additionally read
        // (D_S, Q_S). Building it is O(1) — fingerprints are cached in
        // the label headers.
        let key = DeliveryKey::new(&qm.es, &qm.ds, &qm.dr, &qm.v, pr, qs, qr);

        let cached = self.delivery_cache.lookup(&key);
        let outcome = match cached {
            Some(outcome) => {
                // O(1) replay: one lookup instead of a linear label walk.
                self.clock.charge(Category::KernelIpc, self.cost.cache_hit);
                outcome
            }
            None => {
                // Charge the label checks: linear in the entries examined
                // (§5.6).
                let work = ops::op_work(&[&qm.es, qr, &qm.dr, &qm.v, pr]) + 1;
                self.clock
                    .charge(Category::KernelIpc, work as u64 * self.cost.label_entry);

                let outcome = if !ops::check_decont_within_port(&qm.dr, pr) {
                    // Figure 4 requirement (4): D_R ⊑ p_R.
                    CachedOutcome::Drop(DropReason::PortLabelDecont)
                } else if !ops::check_delivery(&qm.es, qr, &qm.dr, &qm.v, pr) {
                    // Figure 4 requirement (1): E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R.
                    CachedOutcome::Drop(DropReason::LabelCheck)
                } else {
                    // Figure 4 effects.
                    let new_qs = Arc::new(ops::apply_receive_contamination(qs, &qm.ds, &qm.es));
                    let new_qr = Arc::new(ops::apply_receive_decontamination(qr, &qm.dr));
                    let effect_work = ops::op_work(&[qs, &qm.ds, &qm.es, &qm.dr]) + 1;
                    self.clock.charge(
                        Category::KernelIpc,
                        effect_work as u64 * self.cost.label_entry,
                    );
                    CachedOutcome::Deliver { new_qs, new_qr }
                };
                self.delivery_cache.insert(key, outcome.clone());
                outcome
            }
        };

        let (new_qs, new_qr) = match outcome {
            CachedOutcome::Drop(reason) => return DeliveryOutcome::Dropped(reason),
            CachedOutcome::Deliver { new_qs, new_qr } => (new_qs, new_qr),
        };

        // The message will be delivered. Fork an event process if the
        // destination is a base-owned port of an event-mode process (§6.1).
        let (ep, is_new_ep) = match existing_ep {
            Some(eid) => (Some(eid), false),
            None if self.processes[pid.index()].ep_mode => (Some(self.create_ep(pid)), true),
            None => (None, false),
        };

        // Context-switch accounting (§6.2: scheduling cost of an event
        // process is little higher than a single process's).
        let ctx = ExecCtx { pid, ep };
        match self.last_ctx {
            Some(prev) if prev.pid != pid => {
                self.clock
                    .charge(Category::KernelIpc, self.cost.context_switch);
                self.stats.context_switches += 1;
            }
            Some(prev) if prev.ep != ep => {
                self.clock.charge(Category::KernelIpc, self.cost.ep_switch);
                self.stats.ep_switches += 1;
            }
            None => {
                self.clock
                    .charge(Category::KernelIpc, self.cost.context_switch);
                self.stats.context_switches += 1;
            }
            _ => {}
        }
        self.last_ctx = Some(ctx);

        // Install the Figure 4 effect labels: `Arc` bumps, never clones.
        match ep {
            Some(eid) => {
                let e = &mut self.eps[eid.index()];
                e.send_label = new_qs;
                e.recv_label = new_qr;
                e.activations += 1;
            }
            None => {
                let p = &mut self.processes[pid.index()];
                p.send_label = new_qs;
                p.recv_label = new_qr;
            }
        }

        // Payload copy cost.
        self.clock.charge(
            Category::KernelIpc,
            qm.body.size_bytes() as u64 * self.cost.msg_byte,
        );

        let msg = Message {
            port: qm.port,
            body: qm.body,
            verify: qm.v,
        };
        self.invoke(router, pid, ep, is_new_ep, &msg);
        DeliveryOutcome::Delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use asbestos_labels::Level;

    fn qm(port: u64, tag: u64) -> QueuedMessage {
        QueuedMessage {
            port: Handle::from_raw(port),
            body: Value::U64(tag),
            es: Arc::new(Label::bottom()),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::top(),
            from: None,
        }
    }

    #[test]
    fn round_robin_interleaves_ports() {
        let mut m = Mailboxes::default();
        m.push(qm(1, 10));
        m.push(qm(1, 11));
        m.push(qm(2, 20));
        m.push(qm(1, 12));
        m.push(qm(3, 30));
        let order: Vec<(u64, Value)> = std::iter::from_fn(|| m.pop_next())
            .map(|q| (q.port.raw(), q.body))
            .collect();
        // Port 1 activates first, then 2, then 3; each pop rotates the
        // port to the back, and per-port FIFO order is preserved.
        assert_eq!(
            order,
            vec![
                (1, Value::U64(10)),
                (2, Value::U64(20)),
                (3, Value::U64(30)),
                (1, Value::U64(11)),
                (1, Value::U64(12)),
            ]
        );
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn mailbox_len_tracks_push_pop() {
        let mut m = Mailboxes::default();
        assert_eq!(m.len(), 0);
        m.push(qm(5, 0));
        m.push(qm(6, 1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().count(), 2);
        m.pop_next();
        assert_eq!(m.len(), 1);
        m.pop_next();
        assert!(m.pop_next().is_none());
    }

    /// A transparent reference model of the documented scheduling
    /// contract: one FIFO per port, ports enter the rotation on their
    /// first pending message, each pop serves the front port and rotates
    /// it to the back while it has messages left.
    #[derive(Default)]
    struct RotationModel {
        queues: BTreeMap<u64, VecDeque<u64>>,
        rotation: VecDeque<u64>,
    }

    impl RotationModel {
        fn push(&mut self, port: u64, tag: u64) {
            let q = self.queues.entry(port).or_default();
            if q.is_empty() {
                self.rotation.push_back(port);
            }
            q.push_back(tag);
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            let port = self.rotation.pop_front()?;
            let q = self.queues.get_mut(&port).unwrap();
            let tag = q.pop_front().unwrap();
            if !q.is_empty() {
                self.rotation.push_back(port);
            }
            Some((port, tag))
        }
    }

    /// Round-robin fairness, pinned as properties over random workloads:
    ///
    /// 1. **Model equivalence**: under arbitrary interleavings of pushes
    ///    and pops, every pop matches the documented rotation model.
    /// 2. **Per-port FIFO**: each port's messages pop in push order.
    /// 3. **Bounded waiting**: during a pure drain (no pushes racing in),
    ///    between consecutive pops of port `p` — a window where `p` is
    ///    continuously pending — every other port is popped at most once,
    ///    so no pending port ever waits more than one full rotation.
    #[test]
    fn round_robin_fairness_properties() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRng;

        let mut rng = TestRng::deterministic(concat!(module_path!(), "::fairness"));
        let ops = proptest::collection::vec((0u64..8, any::<bool>()), 1..200);
        for _case in 0..256 {
            let plan = ops.generate(&mut rng);
            let mut m = Mailboxes::default();
            let mut model = RotationModel::default();
            let mut pushed_per_port: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            let mut popped: Vec<(u64, u64)> = Vec::new();
            let check_pop = |m: &mut Mailboxes, model: &mut RotationModel| {
                let got = m
                    .pop_next()
                    .map(|q| (q.port.raw(), q.body.as_u64().unwrap()));
                assert_eq!(got, model.pop(), "pop deviates from the rotation model");
                got
            };
            for (tag, (port, pop_after)) in plan.into_iter().enumerate() {
                let tag = tag as u64;
                m.push(qm(port, tag));
                model.push(port, tag);
                pushed_per_port.entry(port).or_default().push(tag);
                if pop_after {
                    popped.extend(check_pop(&mut m, &mut model));
                }
            }
            // Pure drain phase: ports stay pending until their last pop.
            let mut drain: Vec<(u64, u64)> = Vec::new();
            while let Some(entry) = check_pop(&mut m, &mut model) {
                drain.push(entry);
            }
            popped.extend(drain.iter().copied());

            // (2) Per-port FIFO order is push order.
            let mut popped_per_port: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for &(port, t) in &popped {
                popped_per_port.entry(port).or_default().push(t);
            }
            assert_eq!(popped_per_port, pushed_per_port, "per-port FIFO");

            // (3) Bounded waiting over the drain. Only windows between
            // *consecutive* pops of `p` count: after its final pop the
            // port is empty, so it is not waiting on anyone.
            for (i, &(p, _)) in drain.iter().enumerate() {
                if !drain[i + 1..].iter().any(|&(q, _)| q == p) {
                    continue;
                }
                let mut seen = std::collections::HashSet::new();
                for &(q, _) in drain.iter().skip(i + 1) {
                    if q == p {
                        break;
                    }
                    assert!(
                        seen.insert(q),
                        "port {q} served twice while {p} was waiting (window at pop {i})"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_cap_parsing() {
        assert_eq!(cache_cap_from(None), DEFAULT_DELIVERY_CACHE_CAP);
        assert_eq!(
            cache_cap_from(Some("not-a-number")),
            DEFAULT_DELIVERY_CACHE_CAP
        );
        assert_eq!(cache_cap_from(Some("0")), 0, "0 disables the cache");
        assert_eq!(cache_cap_from(Some("4096")), 4096);
    }

    #[test]
    fn cache_bounds_and_counters() {
        let mut c = DeliveryCache::new(2);
        let key = |i: u64| {
            let l = Label::from_pairs(Level::L1, &[(Handle::from_raw(i), Level::L3)]);
            let b = Label::bottom();
            DeliveryKey::new(&l, &b, &b, &b, &b, &b, &b)
        };
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), CachedOutcome::Drop(DropReason::LabelCheck));
        c.insert(key(2), CachedOutcome::Drop(DropReason::LabelCheck));
        assert!(c.lookup(&key(1)).is_some());
        c.insert(key(3), CachedOutcome::Drop(DropReason::LabelCheck));
        // FIFO eviction dropped key(1).
        assert!(c.lookup(&key(1)).is_none());
        assert_eq!(c.len(), 2);
        let (hits, misses, evictions) = c.counters();
        assert_eq!((hits, misses, evictions), (1, 2, 1));
        assert!(c.bytes() > 0);
        c.set_capacity(0);
        assert_eq!(c.len(), 0);
        assert!(c.lookup(&key(2)).is_none());
        // Disabled cache records no further counter movement on lookup.
        assert_eq!(c.counters().1, 2);
    }
}
