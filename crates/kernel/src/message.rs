//! Messages and the optional send labels (§5, Figure 4).

use std::sync::Arc;

use asbestos_labels::{Handle, Label};

use crate::ids::ExecCtx;
use crate::value::Value;

/// The four optional label arguments to `send` (Figure 4).
///
/// Defaults make every label a no-op:
///
/// * `contaminate` (`C_S`) defaults to `{⋆}` — adds no contamination (§5.2);
/// * `decont_send` (`D_S`) defaults to `{3}` — grants nothing;
/// * `verify` (`V`) defaults to `{3}` — proves nothing, restricts nothing;
/// * `decont_recv` (`D_R`) defaults to `{⋆}` — raises nothing.
#[derive(Clone, Debug)]
pub struct SendArgs {
    /// `C_S`: extra contamination applied to this message. Requires no
    /// privilege — contamination only ever restricts information flow.
    pub contaminate: Label,
    /// `D_S`: lowers the receiver's send label (grants privilege/clears
    /// taint). Every handle below `3` requires the sender to hold `⋆`.
    pub decont_send: Label,
    /// `V`: proves an upper bound on the sender's effective send label; also
    /// delivered to the receiving application (§5.4).
    pub verify: Label,
    /// `D_R`: raises the receiver's receive label. Every handle above `⋆`
    /// requires the sender to hold `⋆`, and `D_R ⊑ p_R` must hold.
    pub decont_recv: Label,
}

impl Default for SendArgs {
    fn default() -> SendArgs {
        SendArgs {
            contaminate: Label::bottom(),
            decont_send: Label::top(),
            verify: Label::top(),
            decont_recv: Label::bottom(),
        }
    }
}

impl SendArgs {
    /// No optional labels: plain contaminating send.
    pub fn new() -> SendArgs {
        SendArgs::default()
    }

    /// Adds contamination `C_S` entries.
    pub fn contaminate(mut self, label: Label) -> SendArgs {
        self.contaminate = label;
        self
    }

    /// Sets the decontaminate-send label `D_S`.
    pub fn grant(mut self, label: Label) -> SendArgs {
        self.decont_send = label;
        self
    }

    /// Sets the verification label `V`.
    pub fn verify(mut self, label: Label) -> SendArgs {
        self.verify = label;
        self
    }

    /// Sets the decontaminate-receive label `D_R`.
    pub fn raise_recv(mut self, label: Label) -> SendArgs {
        self.decont_recv = label;
        self
    }

    /// Total explicit entries across the four labels (cost accounting).
    pub fn label_work(&self) -> usize {
        self.contaminate.entry_count()
            + self.decont_send.entry_count()
            + self.verify.entry_count()
            + self.decont_recv.entry_count()
    }
}

/// A message as seen by the receiving application.
///
/// Only the destination port, the payload, and the verification label are
/// visible; the kernel consumes `C_S`/`D_S`/`D_R` when applying Figure 4's
/// effects. Receivers never learn the sender's identity except through `V`
/// (avoiding the confused-deputy pitfall §5.4 discusses).
#[derive(Clone, Debug)]
pub struct Message {
    /// The port this message was delivered to.
    pub port: Handle,
    /// The payload.
    pub body: Value,
    /// The sender's verification label `V`, passed up on delivery (§5.4).
    pub verify: Label,
}

/// A message bound for a port on another *kernel* (federation; see
/// `crates/cluster`).
///
/// The sender-side Figure 4 checks — the two decontamination privilege
/// requirements and the `E_S = P_S ⊔ C_S` snapshot — already ran on the
/// source kernel when `send` resolved; what crosses the wire is exactly
/// the label state a [`QueuedMessage`] would carry, minus the sending
/// context (an `ExecCtx` is meaningless outside its own kernel, and
/// receivers never learn sender identity except through `V` anyway).
/// The delivery-time check runs on the destination kernel, against
/// destination-side state only.
#[derive(Clone, Debug)]
pub struct RemoteSend {
    /// Destination port (owned by another kernel).
    pub port: Handle,
    /// Payload.
    pub body: Value,
    /// The sender's effective send label `E_S`, snapshotted at send time.
    pub es: Arc<Label>,
    /// Decontaminate-send label.
    pub ds: Label,
    /// Decontaminate-receive label.
    pub dr: Label,
    /// Verification label.
    pub v: Label,
}

/// A message queued in the kernel, before delivery-time label checks.
#[derive(Clone, Debug)]
pub(crate) struct QueuedMessage {
    /// Destination port.
    pub port: Handle,
    /// Payload.
    pub body: Value,
    /// The sender's *effective* send label `E_S = P_S ⊔ C_S`, snapshotted at
    /// send time. `Arc`-shared with the sender's label when `C_S` is a
    /// no-op, so repeated sends carry the same label identity.
    pub es: Arc<Label>,
    /// Decontaminate-send label.
    pub ds: Label,
    /// Decontaminate-receive label.
    pub dr: Label,
    /// Verification label.
    pub v: Label,
    /// Sending context, for god-mode statistics only (never exposed to
    /// receivers).
    pub from: Option<ExecCtx>,
}

impl QueuedMessage {
    /// Accounted bytes for queue memory accounting, *excluding* payload
    /// backing buffers. Queued payloads are refcounted views, so billing
    /// `Value::size_bytes` per message would charge one shared buffer
    /// once per queued clone; the kmem report instead adds each unique
    /// backing buffer once (see `KernelShard::kmem_report`). For a
    /// message whose payloads are unshared whole-buffer views the two
    /// schemes sum to the same total.
    pub fn queue_bytes_shallow(&self) -> usize {
        let mut payload_window_bytes = 0;
        self.body
            .for_each_payload(&mut |p| payload_window_bytes += p.len());
        // Message header + payload headers + the four label snapshots.
        48 + self.body.size_bytes() - payload_window_bytes
            + self.es.heap_bytes()
            + self.ds.heap_bytes()
            + self.dr.heap_bytes()
            + self.v.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_labels::Level;

    #[test]
    fn default_args_are_noops() {
        let args = SendArgs::default();
        assert_eq!(args.contaminate.default_level(), Level::Star);
        assert_eq!(args.decont_send.default_level(), Level::L3);
        assert_eq!(args.verify.default_level(), Level::L3);
        assert_eq!(args.decont_recv.default_level(), Level::Star);
        assert_eq!(args.label_work(), 0);
    }

    #[test]
    fn builder_chains() {
        let h = Handle::from_raw(5);
        let args = SendArgs::new()
            .contaminate(Label::from_pairs(Level::Star, &[(h, Level::L3)]))
            .grant(Label::from_pairs(Level::L3, &[(h, Level::Star)]));
        assert_eq!(args.contaminate.get(h), Level::L3);
        assert_eq!(args.decont_send.get(h), Level::Star);
        assert_eq!(args.label_work(), 2);
    }
}
