//! Structured message payloads.
//!
//! Asbestos messages carry opaque data; protocols (9P-style file access,
//! netd's READ/WRITE, OKWS requests) layer meaning on top (§4). In this
//! user-space reproduction, payloads are a small structured [`Value`] type
//! rather than raw bytes, which keeps protocol code checkable while still
//! letting the cost model charge for payload size.
//!
//! Handles may be carried as plain values: knowing a handle's value confers
//! no privilege (§5.1) — privileges travel only through label grants.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asbestos_labels::Handle;

/// Counts [`Payload`] backing-buffer materializations, process-wide.
///
/// Global and atomic (not thread-local like the label clone counter)
/// because payloads cross shard threads: a pool worker's deep copy must
/// be visible to the test thread reading the counter.
static PAYLOAD_DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// A refcounted, immutable byte buffer — the message payload carrier.
///
/// The zero-copy contract: a payload's bytes are written **once**, into a
/// fresh backing buffer, by one of the materializing constructors
/// ([`Payload::copy_from_slice`], `From<Vec<u8>>`). Every movement after
/// that — through `Value::Bytes`, mailboxes, the cross-shard channels,
/// and back out through netd — is a [`Payload::clone`] or
/// [`Payload::slice`], which bump the refcount and never touch the
/// bytes. Each materialization increments the process-wide
/// [`Payload::deep_copies`] counter, so a test can prove a whole
/// request path did zero byte-copies (the `Arc<Label>` discipline from
/// the delivery cache, applied to payloads).
#[derive(Clone)]
pub struct Payload {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// An empty payload (no backing allocation shared; not counted).
    pub fn new() -> Payload {
        Payload {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Materializes a payload by copying `data` into a fresh buffer.
    /// Counted by [`Payload::deep_copies`].
    pub fn copy_from_slice(data: &[u8]) -> Payload {
        PAYLOAD_DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        Payload {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Wraps an already-shared buffer without touching its bytes (the
    /// netd ingest path: the NIC buffer freezes once, then flows through
    /// the kernel by refcount). Not counted as a deep copy.
    pub fn from_arc(data: Arc<[u8]>) -> Payload {
        let end = data.len();
        Payload {
            data,
            start: 0,
            end,
        }
    }

    /// A zero-copy view of `range` within this payload: shares the
    /// backing buffer, adjusts the window. Not counted as a deep copy.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the payload's length.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for a {}-byte payload",
            self.len()
        );
        Payload {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Length in bytes of this payload's window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes of this payload's window.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the window out into an owned `Vec` (an explicit,
    /// deliberate copy — e.g. handing bytes to simulated user memory).
    /// Deliberately *not* counted: the counter tracks payload
    /// materializations, and this constructs no payload.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Identity of the backing buffer (for charge-once accounting:
    /// payloads sharing a buffer report the same id).
    pub fn backing_id(&self) -> usize {
        self.data.as_ptr() as usize
    }

    /// Resident size of the whole backing buffer, which may exceed
    /// [`Payload::len`] when this payload is a slice view.
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }

    /// Process-wide count of payload materializations (backing buffers
    /// written). Clones and slices do not count; a steady-state hot path
    /// should advance this only at its ingress/egress edges.
    pub fn deep_copies() -> u64 {
        PAYLOAD_DEEP_COPIES.load(Ordering::Relaxed)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::new()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl From<Vec<u8>> for Payload {
    /// Materializes from an owned `Vec`. Counted as a deep copy: the
    /// conversion is where a byte-building stage commits its buffer, and
    /// counting it is what catches a stage that rebuilds bytes it could
    /// have shared.
    fn from(v: Vec<u8>) -> Payload {
        PAYLOAD_DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        let end = v.len();
        Payload {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({:?})", self.as_slice())
    }
}

/// A structured message payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// No payload.
    Unit,
    /// A boolean flag.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// Raw bytes (network payloads, file contents), shared by refcount.
    Bytes(Payload),
    /// UTF-8 text (protocol verbs, usernames, SQL).
    Str(String),
    /// A handle value (port names, compartments).
    Handle(Handle),
    /// An ordered sequence.
    List(Vec<Value>),
}

impl Value {
    /// Approximate wire size in bytes, used by the cost model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) => 1,
            Value::U64(_) | Value::Handle(_) => 8,
            Value::Bytes(b) => 8 + b.len(),
            Value::Str(s) => 8 + s.len(),
            Value::List(vs) => 8 + vs.iter().map(Value::size_bytes).sum::<usize>(),
        }
    }

    /// Extracts a `u64`, if this value is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a string slice, if this value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the byte payload, if this value is bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts the shared payload, if this value is bytes. Cloning the
    /// returned payload shares the buffer — the zero-copy extraction
    /// protocol decoders should prefer over [`Value::as_bytes`]` + to_vec`.
    pub fn as_payload(&self) -> Option<&Payload> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Visits every payload in this value, including inside lists
    /// (charge-once memory accounting walks queued bodies with this).
    pub fn for_each_payload<F: FnMut(&Payload)>(&self, f: &mut F) {
        match self {
            Value::Bytes(b) => f(b),
            Value::List(vs) => {
                for v in vs {
                    v.for_each_payload(f);
                }
            }
            _ => {}
        }
    }

    /// Extracts a handle, if this value is one.
    pub fn as_handle(&self) -> Option<Handle> {
        match self {
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// Extracts a list slice, if this value is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Handle(h) => write!(f, "{h}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Bytes(Payload::from(v))
    }
}

impl From<Payload> for Value {
    fn from(v: Payload) -> Value {
        Value::Bytes(v)
    }
}

impl From<Handle> for Value {
    fn from(v: Handle) -> Value {
        Value::Handle(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(7).as_u64(), Some(7));
        assert_eq!(Value::Unit.as_u64(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let h = Handle::from_raw(3);
        assert_eq!(Value::Handle(h).as_handle(), Some(h));
        assert_eq!(
            Value::Bytes(vec![1, 2].into()).as_bytes(),
            Some(&[1u8, 2][..])
        );
        let l = Value::List(vec![Value::Unit]);
        assert_eq!(l.as_list().map(|v| v.len()), Some(1));
    }

    #[test]
    fn size_estimates() {
        assert_eq!(Value::Unit.size_bytes(), 1);
        assert_eq!(Value::U64(0).size_bytes(), 8);
        assert_eq!(Value::Bytes(vec![0; 100].into()).size_bytes(), 108);
        assert_eq!(
            Value::List(vec![Value::U64(1), Value::U64(2)]).size_bytes(),
            24
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::List(vec![Value::U64(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
        assert_eq!(Value::Bytes(vec![0; 3].into()).to_string(), "<3 bytes>");
    }

    #[test]
    fn payload_clone_and_slice_share_the_buffer() {
        let p = Payload::copy_from_slice(b"hello world");
        let before = Payload::deep_copies();
        let c = p.clone();
        let tail = p.slice(6..11);
        assert_eq!(&c[..], b"hello world");
        assert_eq!(&tail[..], b"world");
        assert_eq!(c.backing_id(), p.backing_id());
        assert_eq!(tail.backing_id(), p.backing_id());
        assert_eq!(tail.backing_len(), 11);
        assert_eq!(
            Payload::deep_copies(),
            before,
            "clone and slice must not materialize"
        );
    }

    #[test]
    fn payload_materializations_are_counted() {
        let before = Payload::deep_copies();
        let _a = Payload::copy_from_slice(b"x");
        let _b = Payload::from(vec![1u8, 2]);
        assert!(Payload::deep_copies() >= before + 2);
        // from_arc shares an existing buffer: not a materialization.
        let arc: std::sync::Arc<[u8]> = std::sync::Arc::from(&b"shared"[..]);
        let mid = Payload::deep_copies();
        let p = Payload::from_arc(arc);
        assert_eq!(&p[..], b"shared");
        assert_eq!(Payload::deep_copies(), mid);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn payload_slice_bounds_checked() {
        let p = Payload::copy_from_slice(b"abc");
        let _ = p.slice(1..5);
    }
}
