//! Structured message payloads.
//!
//! Asbestos messages carry opaque data; protocols (9P-style file access,
//! netd's READ/WRITE, OKWS requests) layer meaning on top (§4). In this
//! user-space reproduction, payloads are a small structured [`Value`] type
//! rather than raw bytes, which keeps protocol code checkable while still
//! letting the cost model charge for payload size.
//!
//! Handles may be carried as plain values: knowing a handle's value confers
//! no privilege (§5.1) — privileges travel only through label grants.

use std::fmt;

use asbestos_labels::Handle;

/// A structured message payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// No payload.
    Unit,
    /// A boolean flag.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// Raw bytes (network payloads, file contents).
    Bytes(Vec<u8>),
    /// UTF-8 text (protocol verbs, usernames, SQL).
    Str(String),
    /// A handle value (port names, compartments).
    Handle(Handle),
    /// An ordered sequence.
    List(Vec<Value>),
}

impl Value {
    /// Approximate wire size in bytes, used by the cost model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) => 1,
            Value::U64(_) | Value::Handle(_) => 8,
            Value::Bytes(b) => 8 + b.len(),
            Value::Str(s) => 8 + s.len(),
            Value::List(vs) => 8 + vs.iter().map(Value::size_bytes).sum::<usize>(),
        }
    }

    /// Extracts a `u64`, if this value is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a string slice, if this value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the byte payload, if this value is bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts a handle, if this value is one.
    pub fn as_handle(&self) -> Option<Handle> {
        match self {
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// Extracts a list slice, if this value is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(vs) => Some(vs),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Handle(h) => write!(f, "{h}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Bytes(v)
    }
}

impl From<Handle> for Value {
    fn from(v: Handle) -> Value {
        Value::Handle(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::U64(7).as_u64(), Some(7));
        assert_eq!(Value::Unit.as_u64(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let h = Handle::from_raw(3);
        assert_eq!(Value::Handle(h).as_handle(), Some(h));
        assert_eq!(Value::Bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        let l = Value::List(vec![Value::Unit]);
        assert_eq!(l.as_list().map(|v| v.len()), Some(1));
    }

    #[test]
    fn size_estimates() {
        assert_eq!(Value::Unit.size_bytes(), 1);
        assert_eq!(Value::U64(0).size_bytes(), 8);
        assert_eq!(Value::Bytes(vec![0; 100]).size_bytes(), 108);
        assert_eq!(
            Value::List(vec![Value::U64(1), Value::U64(2)]).size_bytes(),
            24
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::List(vec![Value::U64(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
    }
}
