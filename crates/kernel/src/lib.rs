//! # asbestos-kernel
//!
//! A deterministic user-space simulator of the Asbestos kernel from *Labels
//! and Event Processes in the Asbestos Operating System* (SOSP 2005):
//! message-passing IPC over ports (§4), the full Figure 4 label semantics at
//! every delivery (§5), and event processes with copy-on-write memory (§6).
//!
//! The simulator substitutes for the paper's bare-metal x86 kernel (see
//! DESIGN.md): processes are Rust [`Service`]/[`EpService`] values driven by
//! a deterministic delivery loop, time is a virtual cycle clock charged by a
//! calibrated [`cycles::CostModel`], and memory is simulated 4 KiB pages so
//! the paper's memory measurements (Figure 6) can be reproduced exactly.
//!
//! ## Shape of a service
//!
//! ```
//! use asbestos_kernel::{Kernel, Message, Service, Sys, Value};
//! use asbestos_kernel::cycles::Category;
//! use asbestos_labels::Label;
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn on_start(&mut self, sys: &mut Sys<'_>) {
//!         // Create a public port and publish it for bootstrap (§4).
//!         let port = sys.new_port(Label::top());
//!         sys.set_port_label(port, Label::top()).unwrap();
//!         sys.publish_env("echo.port", Value::Handle(port));
//!     }
//!     fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
//!         if let Some(reply_to) = msg.body.as_handle() {
//!             sys.send(reply_to, Value::Str("pong".into())).unwrap();
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new(42);
//! kernel.spawn("echo", Category::Other, Box::new(Echo));
//! let port = kernel.global_env("echo.port").unwrap().as_handle().unwrap();
//! kernel.inject(port, Value::Unit);
//! kernel.run();
//! assert_eq!(kernel.stats().delivered, 1);
//! ```
//!
//! ## Architecture
//!
//! The kernel is a set of [`shard::KernelShard`]s — each a complete,
//! isolated delivery engine owning its own processes, event processes,
//! ports, frames, mailboxes, decision cache, clock, and stats — behind a
//! [`Kernel`] coordinator that owns placement, the barrier-synchronized
//! round scheduler (parallel `std::thread::scope` drains plus
//! deterministic outbox routing), and the merged whole-kernel views. The
//! only cross-shard state is the router's two read-mostly maps (port
//! directory, global environment); label evaluation always runs on the
//! destination port's shard, so Figure 4 semantics are untouched by the
//! partitioning, and `shards = 1` (the paper-figure configuration) is
//! pinned bit-for-bit against the pre-sharding engine by
//! `tests/shard_determinism.rs`.
//!
//! Within one shard, [`delivery`] is everything that happens to a queued
//! message. Two structures define that engine:
//!
//! **Per-port mailboxes, round-robin scheduled.** Queued messages live in
//! one FIFO per destination port. A deterministic round-robin rotation —
//! ports enter when their first message arrives, each `step()` drains one
//! message from the front port and rotates it to the back — replaces the
//! old single global queue. Per-port order still equals send order, so
//! protocol code is unaffected, while no queue state is shared between
//! ports: the structural prerequisite for sharding the delivery engine
//! across cores.
//!
//! **The delivery-decision cache.** Every delivery evaluates the paper's
//! Figure 4 rule `E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R` plus its relabeling
//! effects — work linear in label size, and the source of Figure 9's
//! linear degradation. But OKWS-style traffic repeats identical label
//! tuples endlessly, so the kernel memoizes: every [`Label`] carries a
//! 64-bit structural fingerprint (maintained incrementally from per-chunk
//! digests, independent of chunk boundaries), and a bounded cache maps
//! the fingerprint 7-tuple of `(E_S, D_S, D_R, V, p_R, Q_S, Q_R)` to the
//! boolean outcome *and* the resulting `Q_S`/`Q_R` labels. A hit replays
//! the whole evaluation in O(1) without cloning a label — effect labels
//! are installed by `Arc` bump, which is why process and event-process
//! labels are stored as `Arc<Label>`. Because keys identify label
//! *contents*, mutation anywhere simply produces different keys; nothing
//! is ever invalidated, and cached runs are bitwise-identical to uncached
//! ones (pinned by `tests/delivery_cache.rs`). Hits, misses, evictions,
//! and cache bytes surface in [`Stats`] and [`KmemReport`];
//! [`Kernel::set_delivery_cache_capacity`] bounds or disables it.
//!
//! **Overload control.** Armed by [`Kernel::set_backpressure`] (off by
//! default), the [`backpressure`] module turns silent queue-bound drops
//! into graceful degradation: per-(sender, port) credit windows that
//! refill on the sender's *own* handler activations (AIMD: halve on
//! overrun, grow by one per clean activation), a bounded per-shard retry
//! queue that parks over-budget or capacity-blocked messages instead of
//! dropping them, and [`SysError::WouldBlock`] for senders that exhaust
//! both window and deferral quota. The verdict a sender observes is a
//! pure function of its own send history — never of shared queue
//! occupancy — which is what keeps the backpressure signal from becoming
//! a covert channel (pinned by `tests/covert_channels.rs`).

pub mod backpressure;
pub mod cycles;
pub mod delivery;
pub mod error;
pub mod event_process;
pub mod handle_table;
pub mod ids;
pub mod kernel;
pub mod knobs;
pub mod memory;
pub mod message;
mod pool;
pub mod process;
mod router;
pub mod shard;
pub mod stats;
pub mod sys;
pub mod tuner;
pub mod util;
pub mod value;

pub use backpressure::{PortPressure, SendVerdict};
pub use cycles::{Category, CostModel, CYCLES_PER_SEC};
pub use delivery::{DeliveryOutcome, DEFAULT_DELIVERY_CACHE_CAP};
pub use error::{SysError, SysResult};
pub use event_process::{EventProcess, EP_STRUCT_BYTES};
pub use handle_table::{PortOwner, VNODE_BYTES};
pub use ids::{EpId, ExecCtx, ProcessId, MAX_SHARDS};
pub use kernel::{Kernel, KmemReport, DEFAULT_QUEUE_LIMIT};
pub use memory::PAGE_SIZE;
pub use message::{Message, RemoteSend, SendArgs};
pub use process::{EpService, Process, Service, PROCESS_STRUCT_BYTES};
pub use shard::{KernelShard, DEFAULT_PORT_QUEUE_LIMIT};
pub use stats::{DropReason, Stats};
pub use sys::Sys;
pub use tuner::{Action, DefaultPolicy, ShardSignals, Signals, TunePolicy};
pub use value::{Payload, Value};

// Re-export the label vocabulary so downstream crates need only one import.
pub use asbestos_labels::{Handle, Label, Level};
