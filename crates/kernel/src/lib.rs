//! # asbestos-kernel
//!
//! A deterministic user-space simulator of the Asbestos kernel from *Labels
//! and Event Processes in the Asbestos Operating System* (SOSP 2005):
//! message-passing IPC over ports (§4), the full Figure 4 label semantics at
//! every delivery (§5), and event processes with copy-on-write memory (§6).
//!
//! The simulator substitutes for the paper's bare-metal x86 kernel (see
//! DESIGN.md): processes are Rust [`Service`]/[`EpService`] values driven by
//! a deterministic delivery loop, time is a virtual cycle clock charged by a
//! calibrated [`cycles::CostModel`], and memory is simulated 4 KiB pages so
//! the paper's memory measurements (Figure 6) can be reproduced exactly.
//!
//! ## Shape of a service
//!
//! ```
//! use asbestos_kernel::{Kernel, Message, Service, Sys, Value};
//! use asbestos_kernel::cycles::Category;
//! use asbestos_labels::Label;
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn on_start(&mut self, sys: &mut Sys<'_>) {
//!         // Create a public port and publish it for bootstrap (§4).
//!         let port = sys.new_port(Label::top());
//!         sys.set_port_label(port, Label::top()).unwrap();
//!         sys.publish_env("echo.port", Value::Handle(port));
//!     }
//!     fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
//!         if let Some(reply_to) = msg.body.as_handle() {
//!             sys.send(reply_to, Value::Str("pong".into())).unwrap();
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new(42);
//! kernel.spawn("echo", Category::Other, Box::new(Echo));
//! let port = kernel.global_env("echo.port").unwrap().as_handle().unwrap();
//! kernel.inject(port, Value::Unit);
//! kernel.run();
//! assert_eq!(kernel.stats().delivered, 1);
//! ```

pub mod cycles;
pub mod error;
pub mod event_process;
pub mod handle_table;
pub mod ids;
pub mod kernel;
pub mod memory;
pub mod message;
pub mod process;
pub mod stats;
pub mod sys;
pub mod util;
pub mod value;

pub use cycles::{Category, CostModel, CYCLES_PER_SEC};
pub use error::{SysError, SysResult};
pub use event_process::{EventProcess, EP_STRUCT_BYTES};
pub use handle_table::{PortOwner, VNODE_BYTES};
pub use ids::{EpId, ExecCtx, ProcessId};
pub use kernel::{Kernel, KmemReport};
pub use memory::PAGE_SIZE;
pub use message::{Message, SendArgs};
pub use process::{EpService, Process, Service, PROCESS_STRUCT_BYTES};
pub use stats::{DropReason, Stats};
pub use sys::Sys;
pub use value::Value;

// Re-export the label vocabulary so downstream crates need only one import.
pub use asbestos_labels::{Handle, Label, Level};
