//! The persistent shard worker pool.
//!
//! Before this module existed, every barrier round of a multi-shard
//! `run()` spawned and joined fresh `std::thread::scope` threads — on a
//! cross-shard chain that pays thread churn per hop, and the
//! `wall_msgs_per_sec` column of `BENCH_shards.json` showed it: wall
//! throughput *degraded* as shards were added. A [`ShardPool`] amortizes
//! that cost to zero: workers are created once (lazily, on the first
//! multi-shard round that wants parallelism), park on a condvar between
//! rounds, and are reused across rounds and across successive `run()`
//! calls until the kernel drops.
//!
//! **Handshake.** One round is one `run_round` call: the coordinator
//! publishes a job (raw pointers to the shard slice and router, plus a
//! per-worker assignment of disjoint shard indices), bumps the epoch, and
//! wakes every worker. Each worker drains its assigned shards
//! ([`KernelShard::drain_round`]), then decrements the remaining-count;
//! the last one signals the coordinator, which sleeps on the done condvar
//! — a barrier built from the two condvars, with the `Mutex<State>` as
//! the rendezvous. Workers that finish early go straight back to parking:
//! they never spin.
//!
//! **Safety.** The job's raw pointers are only dereferenced between the
//! epoch bump and the worker's own remaining-decrement, and the
//! coordinator blocks until `remaining == 0` before returning — so the
//! `&mut [KernelShard]` and `&Router` borrows it was given strictly
//! outlive every worker access. Assignments partition the active shard
//! set, so no two workers alias a shard.
//!
//! **Panics.** A panicking service handler must behave exactly as it did
//! under `std::thread::scope`: the panic propagates out of `run()` via
//! `resume_unwind`. Workers run each drain under `catch_unwind`, park the
//! payload in the shared state, and *still* decrement the
//! remaining-count, so the round completes, no sibling worker deadlocks,
//! and the pool stays usable for the next `run()`. The coordinator
//! re-raises the first payload after the barrier.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::router::{PullPoint, Router};
use crate::shard::KernelShard;

/// Raw pointers crossing into worker threads. Safety rests on the round
/// protocol above, not on the types: the wrapper exists only to satisfy
/// `Send` for the `State` the mutex guards.
struct JobPtrs {
    shards: *mut KernelShard,
    router: *const Router,
}
unsafe impl Send for JobPtrs {}

/// One round's work order.
struct Job {
    ptrs: JobPtrs,
    /// Disjoint shard indices per worker (index = worker id). Workers
    /// with an empty assignment wake, record nothing, and re-park.
    assignments: Vec<Vec<usize>>,
    /// Per-shard step budget for livelock detection.
    budget: u64,
}

/// Coordinator/worker rendezvous state.
#[derive(Default)]
struct State {
    /// Round generation; a worker runs one job per epoch it observes.
    epoch: u64,
    shutdown: bool,
    job: Option<Job>,
    /// Workers that have not finished the current round.
    remaining: usize,
    /// Accumulated step count across workers for the current round.
    steps: u64,
    /// Any worker exhausted its per-shard budget this round.
    hit_budget: bool,
    /// First panic payload caught this round, re-raised by the
    /// coordinator after the barrier.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers (new epoch or shutdown).
    work: Condvar,
    /// Wakes the coordinator (round complete).
    done: Condvar,
    /// Total worker wakeups, ever — the pool-reuse observable.
    wakeups: AtomicU64,
}

/// A persistent pool of parked per-shard worker threads.
pub(crate) struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` parked worker threads.
    pub fn new(workers: usize) -> ShardPool {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            wakeups: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asbestos-shard-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total worker wakeups since the pool was created.
    pub fn wakeups(&self) -> u64 {
        self.shared.wakeups.load(Ordering::Relaxed)
    }

    /// Runs one barrier round: the shards named by `active` are drained
    /// in parallel, distributed round-robin over the workers. Blocks
    /// until every worker is done; returns `(steps, hit_budget)`.
    /// Re-raises the first worker panic, after the round completes.
    pub fn run_round(
        &self,
        shards: &mut [KernelShard],
        router: &Router,
        active: &[usize],
        budget: u64,
    ) -> (u64, bool) {
        let workers = self.handles.len();
        let mut assignments = vec![Vec::new(); workers];
        for (i, &shard) in active.iter().enumerate() {
            assignments[i % workers].push(shard);
        }
        let mut state = self.shared.state.lock().expect("pool state lock");
        state.job = Some(Job {
            ptrs: JobPtrs {
                shards: shards.as_mut_ptr(),
                router: router as *const Router,
            },
            assignments,
            budget,
        });
        state.epoch += 1;
        state.remaining = workers;
        state.steps = 0;
        state.hit_budget = false;
        self.shared.work.notify_all();
        while state.remaining > 0 {
            state = self.shared.done.wait(state).expect("pool done wait");
        }
        state.job = None;
        let result = (state.steps, state.hit_budget);
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
        result
    }

    /// Structural bookkeeping bytes (thread handles and shared state),
    /// for `KmemReport` accounting.
    pub fn bookkeeping_bytes(&self) -> usize {
        std::mem::size_of::<ShardPool>()
            + std::mem::size_of::<Shared>()
            + self.handles.len()
                * (std::mem::size_of::<JoinHandle<()>>() + std::mem::size_of::<Vec<usize>>())
    }
}

impl Drop for ShardPool {
    /// Wakes and joins every worker. Dropping a kernel mid-workload
    /// (messages still queued) takes this path: workers are parked
    /// between rounds, so they observe `shutdown` immediately.
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_epoch = 0u64;
    loop {
        // Park until a new round (or shutdown).
        let (ptrs, my_shards, budget) = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    let epoch = state.epoch;
                    if let Some(job) = &mut state.job {
                        seen_epoch = epoch;
                        // Take (don't clone) the assignment: it is this
                        // worker's alone, and the coordinator rebuilds
                        // the vector next round anyway.
                        break (
                            JobPtrs {
                                shards: job.ptrs.shards,
                                router: job.ptrs.router,
                            },
                            std::mem::take(&mut job.assignments[id]),
                            job.budget,
                        );
                    }
                }
                state = shared.work.wait(state).expect("pool work wait");
            }
        };
        shared.wakeups.fetch_add(1, Ordering::Relaxed);

        let mut steps = 0u64;
        let mut hit_budget = false;
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for &idx in &my_shards {
            // SAFETY: the coordinator keeps the shard slice and router
            // borrows alive until the round's remaining-count hits zero,
            // and assignments are disjoint, so this is the only live
            // reference to shard `idx`.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                let shard = &mut *ptrs.shards.add(idx);
                shard.drain_round(&*ptrs.router, budget, PullPoint::Barrier)
            }));
            match result {
                Ok((n, hit)) => {
                    steps += n;
                    hit_budget |= hit;
                }
                Err(payload) => {
                    panic_payload = Some(payload);
                    break;
                }
            }
        }

        let mut state = shared.state.lock().expect("pool state lock");
        state.steps += steps;
        state.hit_budget |= hit_budget;
        if state.panic.is_none() {
            state.panic = panic_payload;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_one();
        }
    }
}
