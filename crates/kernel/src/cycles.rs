//! Virtual time: the cycle clock, cost model, and per-category accounting.
//!
//! The paper's testbed is a 2.8 GHz Pentium 4; Figure 9 reports the average
//! cost of each system component in thousands of CPU cycles per connection.
//! Our substitute for that hardware is a virtual cycle clock: every kernel
//! operation and every simulated user-space computation charges cycles to an
//! accounting category, so the Figure 9 breakdown (OKWS / Network / Kernel
//! IPC / OKDB / Other) falls directly out of the accounting.
//!
//! The [`CostModel`] constants are calibrated once against the paper's
//! single-session anchor points (see EXPERIMENTS.md) and then left fixed for
//! every sweep; all scaling behaviour (label sizes, session counts) comes
//! from the implementation.

/// Simulated CPU frequency, matching the paper's 2.8 GHz Pentium 4 (§9).
pub const CYCLES_PER_SEC: u64 = 2_800_000_000;

/// Accounting categories matching Figure 9's breakdown.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// Time spent in OKWS user code (ok-demux, workers, launcher).
    Okws,
    /// Time spent in netd and the network substrate.
    Network,
    /// Time spent in `send`/`recv` processing and label operations.
    KernelIpc,
    /// Time spent in the database path (idd lookups, ok-dbproxy, SQL engine).
    Okdb,
    /// Everything else (file server, idle bookkeeping, test drivers).
    Other,
}

impl Category {
    /// All categories in Figure 9 order.
    pub const ALL: [Category; 5] = [
        Category::Okdb,
        Category::Okws,
        Category::KernelIpc,
        Category::Network,
        Category::Other,
    ];

    /// Display name as used in Figure 9.
    pub fn name(self) -> &'static str {
        match self {
            Category::Okws => "OKWS",
            Category::Network => "Network",
            Category::KernelIpc => "Kernel IPC",
            Category::Okdb => "OKDB",
            Category::Other => "Other",
        }
    }
}

/// Cycle costs for kernel operations.
///
/// Label-related costs are *per explicit label entry visited*, which makes
/// every label operation linear in label size — the property responsible for
/// the paper's linear throughput degradation as cached sessions accumulate
/// (§9.3: "As expected, linear scaling factors in our label implementation
/// lead to linear performance degradation as labels increase in size").
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed cost of enqueueing a message (syscall entry, copy setup).
    pub send_base: u64,
    /// Fixed cost of a delivery attempt (queue pop, vnode lookup).
    pub recv_base: u64,
    /// Cost per label entry visited during checks and contamination.
    pub label_entry: u64,
    /// Cost per byte of message payload copied.
    pub msg_byte: u64,
    /// Cost of switching between different processes.
    pub context_switch: u64,
    /// Cost of switching to or creating an event process within a process
    /// (restoring labels, page-table deltas); much cheaper than a full
    /// context switch (§6.2).
    pub ep_switch: u64,
    /// Cost of creating an event process.
    pub ep_create: u64,
    /// Cost of copying a page for copy-on-write.
    pub page_copy: u64,
    /// Cost of allocating a handle (cipher walk included).
    pub new_handle: u64,
    /// Cost of creating a port (handle + vnode setup).
    pub new_port: u64,
    /// Cost of replaying a memoized delivery decision: one hash lookup
    /// over cached fingerprints, independent of label sizes.
    pub cache_hit: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        // Calibrated against §9's anchor points; see EXPERIMENTS.md for the
        // derivation. Roughly: an idle-system OKWS request performs ~30 IPCs
        // and should land near 1 750 Kcycles/connection in total with the
        // service costs included.
        CostModel {
            send_base: 4_000,
            recv_base: 5_000,
            label_entry: 2,
            msg_byte: 4,
            context_switch: 6_000,
            ep_switch: 1_200,
            ep_create: 9_000,
            page_copy: 3_000,
            new_handle: 2_500,
            new_port: 4_000,
            cache_hit: 60,
        }
    }
}

/// The virtual clock plus per-category totals.
#[derive(Clone, Debug, Default)]
pub struct CycleClock {
    now: u64,
    totals: [u64; 5],
}

impl CycleClock {
    /// Creates a clock at time zero with empty totals.
    pub fn new() -> CycleClock {
        CycleClock::default()
    }

    /// Current virtual time in cycles.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock, attributing the cycles to `category`.
    #[inline]
    pub fn charge(&mut self, category: Category, cycles: u64) {
        self.now += cycles;
        self.totals[Self::slot(category)] += cycles;
    }

    /// Total cycles attributed to `category` so far.
    #[inline]
    pub fn total(&self, category: Category) -> u64 {
        self.totals[Self::slot(category)]
    }

    /// Adds another clock's time and totals into this one (shard merging:
    /// the merged `now` is total cycles consumed across all shards).
    pub(crate) fn absorb(&mut self, other: &CycleClock) {
        self.now += other.now;
        for (slot, total) in self.totals.iter_mut().zip(other.totals.iter()) {
            *slot += total;
        }
    }

    /// Snapshot of all category totals, in [`Category::ALL`] order.
    pub fn snapshot(&self) -> CycleSnapshot {
        CycleSnapshot {
            now: self.now,
            totals: self.totals,
        }
    }

    fn slot(category: Category) -> usize {
        match category {
            Category::Okws => 0,
            Category::Network => 1,
            Category::KernelIpc => 2,
            Category::Okdb => 3,
            Category::Other => 4,
        }
    }
}

/// A point-in-time copy of the clock, for interval measurements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleSnapshot {
    now: u64,
    totals: [u64; 5],
}

impl CycleSnapshot {
    /// Virtual time at the snapshot.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Category total at the snapshot.
    pub fn total(&self, category: Category) -> u64 {
        self.totals[CycleClock::slot(category)]
    }

    /// Per-category difference `later - self`.
    pub fn delta(&self, later: &CycleSnapshot) -> Vec<(Category, u64)> {
        Category::ALL
            .iter()
            .map(|&c| (c, later.total(c) - self.total(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut clk = CycleClock::new();
        clk.charge(Category::KernelIpc, 100);
        clk.charge(Category::Okws, 50);
        clk.charge(Category::KernelIpc, 10);
        assert_eq!(clk.now(), 160);
        assert_eq!(clk.total(Category::KernelIpc), 110);
        assert_eq!(clk.total(Category::Okws), 50);
        assert_eq!(clk.total(Category::Okdb), 0);
    }

    #[test]
    fn snapshot_deltas() {
        let mut clk = CycleClock::new();
        clk.charge(Category::Network, 5);
        let before = clk.snapshot();
        clk.charge(Category::Network, 7);
        clk.charge(Category::Other, 2);
        let after = clk.snapshot();
        let delta = before.delta(&after);
        assert!(delta.contains(&(Category::Network, 7)));
        assert!(delta.contains(&(Category::Other, 2)));
        assert!(delta.contains(&(Category::Okws, 0)));
    }

    #[test]
    fn categories_have_figure9_names() {
        let names: Vec<_> = Category::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["OKDB", "OKWS", "Kernel IPC", "Network", "Other"]);
    }
}
