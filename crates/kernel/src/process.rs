//! Processes and the service traits user code implements.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use asbestos_labels::Label;

use crate::cycles::Category;
use crate::ids::EpId;
use crate::memory::PageTable;
use crate::message::Message;
use crate::sys::Sys;
use crate::value::Value;

/// Accounted size of the minimal process structure (§6.1: "Asbestos's
/// minimal process structure takes 320 bytes").
pub const PROCESS_STRUCT_BYTES: usize = 320;

/// Behavior of an ordinary (non-event) process.
///
/// Asbestos services are event loops: the kernel invokes
/// [`Service::on_message`] once per delivered message. Sends issued from the
/// handler are queued and delivered in later scheduler steps, so multi-step
/// protocols keep their pending state in `self` (continuation style — the
/// same structure an efficient event-driven server has on any OS, §6).
///
/// `Send` is a supertrait because processes live on kernel shards and
/// shards execute on scoped threads; captured state crosses threads with
/// its shard (use `Arc<Mutex<…>>`, not `Rc<RefCell<…>>`, for god-mode
/// observation channels).
pub trait Service: Send + 'static {
    /// Invoked once when the process starts, before any message delivery.
    /// Typical services create their ports here and publish them via the
    /// environment (§4's bootstrapping convention).
    fn on_start(&mut self, _sys: &mut Sys<'_>) {}

    /// Invoked for every message delivered to a port this process owns.
    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message);

    /// Invoked once by [`crate::Kernel::teardown`] when the deployment is
    /// being shut down cleanly. Services with durable state (ok-dbproxy's
    /// write-ahead log) flush here; a crash — dropping the kernel without
    /// teardown — skips this, which is exactly the torn state the
    /// recovery path must tolerate. Sends issued here are never
    /// delivered: the kernel stops scheduling after teardown.
    fn on_teardown(&mut self, _sys: &mut Sys<'_>) {}

    /// Optional downcast hook for god-mode test inspection.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }
}

/// Behavior of an event-process-based service (§6).
///
/// The kernel calls [`EpService::on_base_start`] exactly once, while the
/// base process is still running; this is where the service allocates its
/// public ports and initializes base memory. After that the base process
/// "never runs again" (§6.1) and every delivery happens inside an event
/// process: `on_event` takes `&self` precisely because per-user state must
/// live in simulated memory — where the kernel can enforce copy-on-write
/// isolation — not in Rust fields shared across users.
///
/// `Send` is a supertrait for the same reason as [`Service`]: event
/// processes execute on their shard's thread.
pub trait EpService: Send + 'static {
    /// One-time base-process setup (create ports, write initial memory).
    fn on_base_start(&mut self, _sys: &mut Sys<'_>) {}

    /// Handles one message in the context of an event process. Returning
    /// from this method is the implicit `ep_yield` of the paper's event
    /// loop; call [`Sys::ep_exit`] instead to discard the event process.
    fn on_event(&self, sys: &mut Sys<'_>, msg: &Message);

    /// Optional downcast hook for god-mode test inspection.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }
}

/// A process body: either an ordinary service or an event-process service.
pub enum Body {
    /// Ordinary process.
    Plain(Box<dyn Service>),
    /// Event-process realm (§6).
    Event(Box<dyn EpService>),
}

/// Kernel state for one process.
pub struct Process {
    /// Debug name (e.g. `"netd"`, `"ok-demux"`).
    pub name: String,
    /// The process send label `P_S` — its current contamination.
    ///
    /// `Arc`-shared: the delivery cache installs memoized Figure 4 effect
    /// labels by reference bump, and forked event processes share the
    /// base's labels until either side mutates (copy-on-write via
    /// `Arc::make_mut`).
    pub send_label: Arc<Label>,
    /// The process receive label `P_R` — the contamination it accepts.
    pub recv_label: Arc<Label>,
    /// Cycle-accounting category for work done by this process.
    pub category: Category,
    /// Base address space (shared copy-on-write with event processes).
    pub page_table: PageTable,
    /// Environment for port bootstrapping (§4).
    pub env: BTreeMap<String, Value>,
    /// Live event processes belonging to this process.
    pub eps: Vec<EpId>,
    /// Whether the process is alive.
    pub alive: bool,
    /// Whether this process runs in the event-process realm.
    pub ep_mode: bool,
    /// The service body; `None` transiently while a handler is executing.
    pub(crate) body: Option<Body>,
}

impl Process {
    /// Creates a process with default labels (`P_S = {1}`, `P_R = {2}`).
    pub fn new(name: &str, category: Category, body: Body) -> Process {
        let ep_mode = matches!(body, Body::Event(_));
        Process {
            name: name.to_string(),
            send_label: Arc::new(Label::default_send()),
            recv_label: Arc::new(Label::default_recv()),
            category,
            page_table: PageTable::new(),
            env: BTreeMap::new(),
            eps: Vec::new(),
            alive: true,
            ep_mode,
            body: Some(body),
        }
    }

    /// Accounted kernel bytes for this process (structure plus labels).
    pub fn kernel_bytes(&self) -> usize {
        PROCESS_STRUCT_BYTES + self.send_label.heap_bytes() + self.recv_label.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_labels::Level;

    struct Nop;
    impl Service for Nop {
        fn on_message(&mut self, _sys: &mut Sys<'_>, _msg: &Message) {}
    }

    #[test]
    fn new_process_defaults() {
        let p = Process::new("test", Category::Other, Body::Plain(Box::new(Nop)));
        assert_eq!(p.send_label.default_level(), Level::L1);
        assert_eq!(p.recv_label.default_level(), Level::L2);
        assert!(p.alive);
        assert!(!p.ep_mode);
        assert!(p.eps.is_empty());
    }

    #[test]
    fn kernel_bytes_includes_labels() {
        let p = Process::new("test", Category::Other, Body::Plain(Box::new(Nop)));
        // Process structure plus exactly the labels' own accounting —
        // computed, not hardcoded, so label-representation changes don't
        // break this test.
        let label_bytes = p.send_label.heap_bytes() + p.recv_label.heap_bytes();
        assert!(label_bytes > 0, "default labels occupy heap");
        assert_eq!(p.kernel_bytes(), PROCESS_STRUCT_BYTES + label_bytes);
    }
}
