//! Overload control: credit-based backpressure and the retry queue.
//!
//! The pre-overload-control kernel handled queue pressure the only way §4
//! allows a label kernel to: silently (`DropReason::PortQueueFull`). At
//! flood load that is collapse, not degradation — every dropped message
//! wasted the work its sender already invested. This module adds the
//! missing control loop: senders get a structured [`SendVerdict`] back
//! from `send`, briefly-over-budget messages park in a bounded per-shard
//! retry queue instead of being lost, and sustained over-budget senders
//! are refused with [`crate::SysError::WouldBlock`] so they can back off
//! at the source, before investing more work.
//!
//! ## Why credits are activation-clocked, not delivery-clocked
//!
//! The obvious loop — return a credit when the receiver dequeues the
//! message — is a covert channel. Delivery timing depends on shared
//! state: the round-robin rotation, the depth of the destination port's
//! queue (which holds *other senders'* messages, including ones that
//! will fail their label check — a tainted flood occupies the queue
//! until delivery time), and cross-shard scheduling. A sender that could
//! watch its credits return would be watching an attacker-modulated
//! clock. "State and history in operating systems" frames exactly this:
//! any state the kernel feeds back to a sender is history an adversary
//! can write to.
//!
//! So the credit loop here is **self-clocked**. Each sender has, per
//! destination port, a window of credits that refills at the start of
//! each of the sender's own handler activations. The verdict of a send
//! is a pure function of the sender's own history — how many times it
//! has sent to that port this activation, and whether it overran in past
//! activations (AIMD: the window halves on the activation's first
//! overrun, grows by one after each clean activation). Nothing another
//! process does can change the verdict sequence a sender observes; the
//! covert-channel suite pins this byte-for-byte.
//!
//! Shared-state pressure still exists, of course — a full destination
//! port, a full cross-shard channel. It influences only *placement*:
//! an admitted message that cannot enqueue right now parks silently in
//! the retry queue and is flushed when capacity returns, exactly as
//! invisibly as §4's label drops. The retry queue preserves per-sender
//! per-port FIFO order by barriering: once one of a sender's messages
//! to a port is parked, its later messages to that port park behind it.
//!
//! Everything here is inert by default: `backpressure` is off unless
//! [`crate::Kernel::set_backpressure`] arms it, so the golden-trace
//! suites (`shard_determinism`, `netd_determinism`) see bit-identical
//! runs.

use std::collections::{BTreeMap, HashMap, VecDeque};

use asbestos_labels::Handle;

use crate::error::{SysError, SysResult};
use crate::ids::ProcessId;
use crate::message::QueuedMessage;
use crate::router::Router;
use crate::shard::KernelShard;
use crate::stats::DropReason;

/// Starting per-activation credit window per (sender, port).
pub const DEFAULT_CREDIT_WINDOW: u32 = 16;

/// Floor the multiplicative-decrease path never halves below.
pub const MIN_CREDIT_WINDOW: u32 = 4;

/// Ceiling the additive-increase path never grows past.
pub const MAX_CREDIT_WINDOW: u32 = 64;

/// Deferrals one sender may accumulate per port per activation before
/// further sends are refused with [`SysError::WouldBlock`]. Per-sender
/// state, so one sender's exhausted quota says nothing about another's.
pub const DEFAULT_DEFER_QUOTA: u32 = 64;

/// Hard bound on the whole retry queue — the same §8 resource-exhaustion
/// backstop as the shard queue limit, and like it, overflowing is
/// *silent* (the bound is shared state, so a sender-visible signal here
/// would be a storage channel).
pub const DEFAULT_RETRY_BACKSTOP: usize = crate::kernel::DEFAULT_QUEUE_LIMIT;

/// What `send` tells the caller happened to its message.
///
/// Like the paper's `send` (§4), none of these verdicts says anything
/// about *delivery*: label checks run when the receiver is scheduled and
/// failures drop silently. The verdict reports queue admission only, and
/// is computed purely from the sender's own credit state — never from
/// the (shared, attacker-influenced) occupancy of the destination queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Admitted within the sender's credit window. With backpressure
    /// disabled (the default), every privileged-enough send reports
    /// this — the pre-overload-control contract, bit for bit.
    Delivered,
    /// The sender overran its window; the message is parked in the
    /// shard's retry queue and will be admitted when capacity returns.
    /// Nothing is lost, but the sender should slow down: its window
    /// just halved.
    Deferred,
    /// Constructed by upper layers (netd accept shedding, OKWS worker
    /// send paths) when they convert a [`SysError::WouldBlock`] refusal
    /// into dropped work. The kernel itself reports refusal through the
    /// error, not this verdict.
    Shed,
}

/// How the credit accounting classified one send.
pub(crate) enum Admission {
    /// Within the window: enqueue (or park silently if shared capacity
    /// is exhausted — placement is invisible to the sender).
    Admit,
    /// Over the window, within the defer quota: park, report `Deferred`.
    Defer,
    /// Over the window and the quota: refuse with `WouldBlock`.
    Refuse,
}

/// Per-(sender, port) credit state. All fields are functions of the
/// sender's own send/activation history — the covert-channel invariant.
#[derive(Clone, Copy, Debug)]
struct CreditEntry {
    /// Sends admitted per activation (AIMD-controlled).
    window: u32,
    /// Sends admitted so far this activation.
    in_flight: u32,
    /// Deferrals so far this activation (the `WouldBlock` quota).
    deferred: u32,
    /// The sender activation this entry last observed; a newer epoch
    /// lazily resets the per-activation counters.
    epoch: u64,
    /// Whether this activation already overran (the window halves at
    /// most once per activation).
    overflowed: bool,
}

impl CreditEntry {
    fn fresh(epoch: u64) -> CreditEntry {
        CreditEntry {
            window: DEFAULT_CREDIT_WINDOW,
            in_flight: 0,
            deferred: 0,
            epoch,
            overflowed: false,
        }
    }

    /// Rolls the entry forward to `epoch` if it is stale: additive
    /// increase after a clean activation, counter reset either way.
    fn roll(&mut self, epoch: u64) {
        if self.epoch == epoch {
            return;
        }
        if !self.overflowed {
            self.window = (self.window + 1).min(MAX_CREDIT_WINDOW);
        }
        self.overflowed = false;
        self.in_flight = 0;
        self.deferred = 0;
        self.epoch = epoch;
    }
}

/// Cumulative per-port pressure counters (god-mode observability; fed to
/// `BENCH_shards.json` rows and tests, never to simulated processes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortPressure {
    /// Messages silently dropped at this port's queue bound.
    pub dropped: u64,
    /// Messages parked in the retry queue on this port's behalf.
    pub deferred: u64,
}

/// One shard's backpressure state. Inert (and empty) unless `enabled`.
pub(crate) struct Backpressure {
    /// Armed by [`crate::Kernel::set_backpressure`]; off by default so
    /// every golden trace is untouched.
    pub(crate) enabled: bool,
    /// Per-(sender, port) credit windows.
    credits: HashMap<(ProcessId, Handle), CreditEntry>,
    /// Per-sender activation counters (bumped by `invoke`), the clock
    /// the credit windows refill on.
    epochs: HashMap<ProcessId, u64>,
    /// Parked messages awaiting capacity, in arrival order.
    retry: VecDeque<QueuedMessage>,
    /// Parked-message count per (sender, port): the FIFO barrier. While
    /// a key has parked messages, its later sends park behind them.
    parked: HashMap<(ProcessId, Handle), u32>,
    /// Deferrals allowed per (sender, port) per activation.
    pub(crate) defer_quota: u32,
    /// Silent hard bound on the retry queue.
    pub(crate) retry_backstop: usize,
    /// Per-port drop/defer pressure (tracked even with backpressure off
    /// — port-bound drops predate this module).
    port_pressure: BTreeMap<Handle, PortPressure>,
}

impl Default for Backpressure {
    fn default() -> Backpressure {
        Backpressure {
            enabled: false,
            credits: HashMap::new(),
            epochs: HashMap::new(),
            retry: VecDeque::new(),
            parked: HashMap::new(),
            defer_quota: DEFAULT_DEFER_QUOTA,
            retry_backstop: DEFAULT_RETRY_BACKSTOP,
            port_pressure: BTreeMap::new(),
        }
    }
}

impl Backpressure {
    /// Bumps the sender's activation epoch (called by `invoke` before
    /// every handler runs, when armed).
    pub(crate) fn note_activation(&mut self, pid: ProcessId) {
        *self.epochs.entry(pid).or_insert(0) += 1;
    }

    /// Classifies one send against the sender's own credit state.
    pub(crate) fn bill(&mut self, pid: ProcessId, port: Handle) -> Admission {
        let epoch = self.epochs.get(&pid).copied().unwrap_or(0);
        let quota = self.defer_quota;
        let e = self
            .credits
            .entry((pid, port))
            .or_insert_with(|| CreditEntry::fresh(epoch));
        e.roll(epoch);
        if e.in_flight < e.window {
            e.in_flight += 1;
            return Admission::Admit;
        }
        if !e.overflowed {
            e.window = (e.window / 2).max(MIN_CREDIT_WINDOW);
            e.overflowed = true;
        }
        if e.deferred < quota {
            e.deferred += 1;
            Admission::Defer
        } else {
            Admission::Refuse
        }
    }

    /// The sender's projected (window, credits-remaining) for `port`
    /// right now, as its next send would see them. Reads only the
    /// caller's own state — safe to expose through [`crate::Sys`].
    pub(crate) fn credit_state(&self, pid: ProcessId, port: Handle) -> (u32, u32) {
        let epoch = self.epochs.get(&pid).copied().unwrap_or(0);
        match self.credits.get(&(pid, port)) {
            Some(e) if e.epoch == epoch => (e.window, e.window.saturating_sub(e.in_flight)),
            Some(e) => {
                let window = if e.overflowed {
                    e.window
                } else {
                    (e.window + 1).min(MAX_CREDIT_WINDOW)
                };
                (window, window)
            }
            None => (DEFAULT_CREDIT_WINDOW, DEFAULT_CREDIT_WINDOW),
        }
    }

    /// Whether `(pid, port)` has parked messages (the FIFO barrier).
    pub(crate) fn barred(&self, pid: ProcessId, port: Handle) -> bool {
        self.parked.contains_key(&(pid, port))
    }

    /// Parked messages awaiting capacity.
    pub(crate) fn retry_len(&self) -> usize {
        self.retry.len()
    }

    /// Records a port-bound drop in the per-port pressure map.
    pub(crate) fn note_port_drop(&mut self, port: Handle) {
        self.port_pressure.entry(port).or_default().dropped += 1;
    }

    fn note_port_defer(&mut self, port: Handle) {
        self.port_pressure.entry(port).or_default().deferred += 1;
    }

    pub(crate) fn port_pressure(&self) -> &BTreeMap<Handle, PortPressure> {
        &self.port_pressure
    }
}

impl KernelShard {
    /// Parks one message in the retry queue (or, past the silent
    /// backstop, sheds it — shared-state overflow must stay invisible).
    pub(crate) fn park(&mut self, qm: QueuedMessage) {
        if self.bp.retry.len() >= self.bp.retry_backstop {
            self.stats.dropped_shed += 1;
            self.bp.note_port_drop(qm.port);
            return;
        }
        if let Some(ctx) = qm.from {
            *self.bp.parked.entry((ctx.pid, qm.port)).or_insert(0) += 1;
        }
        self.stats.sent_deferred += 1;
        self.bp.note_port_defer(qm.port);
        self.bp.retry.push_back(qm);
    }

    /// Inbound enqueue with backpressure: shared-capacity overflow (and
    /// the FIFO barrier) park instead of dropping. With backpressure off
    /// this is exactly [`KernelShard::enqueue_checked`].
    pub(crate) fn enqueue_inbound(&mut self, qm: QueuedMessage) {
        if self.bp.enabled {
            let full = self.mailboxes.len() >= self.queue_limit
                || self.mailboxes.port_len(qm.port) >= self.port_queue_limit;
            let barred = qm.from.is_some_and(|c| self.bp.barred(c.pid, qm.port));
            if full || barred {
                self.park(qm);
                return;
            }
        }
        self.enqueue_checked(qm);
    }

    /// Admission control for a local send with backpressure armed. The
    /// verdict is decided *before* placement, from the sender's own
    /// credit state only; shared-capacity pressure can demote placement
    /// to the retry queue but never changes what the sender observes.
    pub(crate) fn bp_send_local(
        &mut self,
        pid: ProcessId,
        qm: QueuedMessage,
    ) -> SysResult<SendVerdict> {
        // A send to the sender's own port is a self-wakeup, not a
        // cross-process flow: it cannot flood anyone but the sender, and
        // billing it can refuse the one wakeup a process armed to drain
        // its own backlog — netd's deferred accepts would then park
        // forever with no event left to revive the lane. Self-sends skip
        // the credit loop; shared-capacity overflow still parks (never
        // drops) them, so delivery remains guaranteed.
        let self_send = self
            .handles
            .port(qm.port)
            .is_some_and(|p| p.owner == Some(crate::handle_table::PortOwner::Process(pid)));
        let admission = if self_send {
            Admission::Admit
        } else {
            self.bp.bill(pid, qm.port)
        };
        match admission {
            Admission::Admit => {
                let full = self.mailboxes.len() >= self.queue_limit
                    || self.mailboxes.port_len(qm.port) >= self.port_queue_limit;
                if full || self.bp.barred(pid, qm.port) {
                    self.park(qm);
                } else {
                    self.enqueue_checked(qm);
                }
                Ok(SendVerdict::Delivered)
            }
            Admission::Defer => {
                self.park(qm);
                Ok(SendVerdict::Deferred)
            }
            Admission::Refuse => {
                self.stats.dropped_shed += 1;
                self.bp.note_port_drop(qm.port);
                Err(SysError::WouldBlock)
            }
        }
    }

    /// One pass over the retry queue: every parked message whose
    /// destination has capacity again is re-admitted, in arrival order.
    /// A message that still cannot move blocks its (sender, port) key
    /// for the rest of the pass, preserving per-sender per-port FIFO.
    /// Returns the number of messages re-admitted.
    ///
    /// Deliberately credit-free: flush timing depends on shared
    /// scheduler state, so touching the credit windows here would leak
    /// that timing into the verdicts senders observe.
    pub(crate) fn flush_retries(&mut self, router: &Router) -> usize {
        if self.bp.retry.is_empty() {
            return 0;
        }
        let n = self.bp.retry.len();
        let mut flushed = 0;
        let mut blocked: Vec<(ProcessId, Handle)> = Vec::new();
        for _ in 0..n {
            let qm = self.bp.retry.pop_front().expect("pass over n messages");
            let key = qm.from.map(|c| (c.pid, qm.port));
            let barred = key.is_some_and(|k| blocked.contains(&k));
            let dest = if self.handles.get(qm.port).is_some() {
                self.id
            } else {
                router.shard_of(qm.port)
            };
            let admit = !barred
                && if dest == self.id {
                    self.mailboxes.len() < self.queue_limit
                        && self.mailboxes.port_len(qm.port) < self.port_queue_limit
                } else {
                    self.xshard.len(dest as usize) < self.queue_limit
                };
            if admit {
                if let Some(k) = key {
                    if let Some(count) = self.bp.parked.get_mut(&k) {
                        *count -= 1;
                        if *count == 0 {
                            self.bp.parked.remove(&k);
                        }
                    }
                }
                self.stats.retry_flushed += 1;
                flushed += 1;
                if dest == self.id {
                    self.enqueue_checked(qm);
                } else if !self.xshard.push(dest as usize, qm, self.queue_limit) {
                    // Lost a capacity race with a parallel sender; the
                    // channel bound drops silently, as it always has.
                    self.stats.record_drop(DropReason::QueueFull);
                }
            } else {
                if let Some(k) = key {
                    if !barred {
                        blocked.push(k);
                    }
                }
                self.bp.retry.push_back(qm);
            }
        }
        flushed
    }

    /// Parked messages awaiting capacity on this shard.
    pub fn retry_len(&self) -> usize {
        self.bp.retry_len()
    }

    /// Cumulative per-port drop/defer pressure (god-mode; feeds the
    /// per-row counters in `BENCH_shards.json`).
    pub fn port_pressure(&self) -> &BTreeMap<Handle, PortPressure> {
        self.bp.port_pressure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_entry_aimd() {
        let mut e = CreditEntry::fresh(0);
        assert_eq!(e.window, DEFAULT_CREDIT_WINDOW);
        // Overrun: halve once per activation, not once per send.
        e.in_flight = e.window;
        e.roll(0);
        assert_eq!(e.window, DEFAULT_CREDIT_WINDOW);
        // A clean activation grows the window by one.
        e.in_flight = 0;
        e.roll(1);
        assert_eq!(e.window, DEFAULT_CREDIT_WINDOW + 1);
        assert_eq!(e.in_flight, 0);
    }

    #[test]
    fn bill_is_a_pure_function_of_own_history() {
        let mut bp = Backpressure::default();
        let pid = ProcessId::new(0, 0);
        let port = Handle::from_raw(9);
        // Window admits, then defers, then (past the quota) refuses —
        // regardless of anything else in the system.
        let mut verdicts = Vec::new();
        for _ in 0..(DEFAULT_CREDIT_WINDOW + DEFAULT_DEFER_QUOTA + 3) {
            verdicts.push(match bp.bill(pid, port) {
                Admission::Admit => 'a',
                Admission::Defer => 'd',
                Admission::Refuse => 'r',
            });
        }
        let admits = verdicts.iter().filter(|&&v| v == 'a').count();
        let defers = verdicts.iter().filter(|&&v| v == 'd').count();
        let refusals = verdicts.iter().filter(|&&v| v == 'r').count();
        assert_eq!(admits, DEFAULT_CREDIT_WINDOW as usize);
        assert_eq!(defers, DEFAULT_DEFER_QUOTA as usize);
        assert_eq!(refusals, 3);
        // The overrun halved the window for the next activation.
        bp.note_activation(pid);
        let (window, remaining) = bp.credit_state(pid, port);
        assert_eq!(window, DEFAULT_CREDIT_WINDOW / 2);
        assert_eq!(remaining, window);
    }

    #[test]
    fn window_recovers_additively_after_clean_activations() {
        let mut bp = Backpressure::default();
        let pid = ProcessId::new(0, 1);
        let port = Handle::from_raw(3);
        // Overrun once: 16 → 8.
        for _ in 0..=DEFAULT_CREDIT_WINDOW {
            bp.bill(pid, port);
        }
        // Eight clean activations: 8 → 16 again.
        for _ in 0..8 {
            bp.note_activation(pid);
            bp.bill(pid, port);
        }
        bp.note_activation(pid);
        let (window, _) = bp.credit_state(pid, port);
        assert_eq!(window, DEFAULT_CREDIT_WINDOW);
    }

    #[test]
    fn credit_state_of_an_unused_port_is_the_default() {
        let bp = Backpressure::default();
        let (window, remaining) = bp.credit_state(ProcessId::new(0, 0), Handle::from_raw(1));
        assert_eq!(window, DEFAULT_CREDIT_WINDOW);
        assert_eq!(remaining, DEFAULT_CREDIT_WINDOW);
    }
}
