//! Closure-based service adapters.
//!
//! Small services — test fixtures, example glue, one-port daemons — are more
//! readable as closures than as named types. These adapters wrap closures in
//! the [`Service`]/[`EpService`] traits.
//!
//! Note the types enforce the event-process discipline: the event closure is
//! `Fn`, not `FnMut`, because event handlers must keep per-user state in
//! simulated memory (where the kernel isolates it), never in captured Rust
//! state shared across users.

use std::any::Any;
use std::sync::Arc;
use std::sync::Mutex;

use crate::message::Message;
use crate::process::{EpService, Service};
use crate::sys::Sys;
use crate::value::Value;
use asbestos_labels::{Handle, Label};

struct FnService<S, F> {
    on_start: Option<S>,
    on_message: F,
}

impl<S, F> Service for FnService<S, F>
where
    S: FnOnce(&mut Sys<'_>) + Send + 'static,
    F: FnMut(&mut Sys<'_>, &Message) + Send + 'static,
{
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        if let Some(start) = self.on_start.take() {
            start(sys);
        }
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        (self.on_message)(sys, msg);
    }
}

/// Wraps a message handler closure as an ordinary [`Service`].
pub fn service_fn<F>(on_message: F) -> Box<dyn Service>
where
    F: FnMut(&mut Sys<'_>, &Message) + Send + 'static,
{
    Box::new(FnService {
        on_start: None::<fn(&mut Sys<'_>)>,
        on_message,
    })
}

/// Wraps start and message handler closures as an ordinary [`Service`].
pub fn service_with_start<S, F>(on_start: S, on_message: F) -> Box<dyn Service>
where
    S: FnOnce(&mut Sys<'_>) + Send + 'static,
    F: FnMut(&mut Sys<'_>, &Message) + Send + 'static,
{
    Box::new(FnService {
        on_start: Some(on_start),
        on_message,
    })
}

struct FnEpService<B, F> {
    on_base_start: Option<B>,
    on_event: F,
}

impl<B, F> EpService for FnEpService<B, F>
where
    B: FnOnce(&mut Sys<'_>) + Send + 'static,
    F: Fn(&mut Sys<'_>, &Message) + Send + 'static,
{
    fn on_base_start(&mut self, sys: &mut Sys<'_>) {
        if let Some(start) = self.on_base_start.take() {
            start(sys);
        }
    }

    fn on_event(&self, sys: &mut Sys<'_>, msg: &Message) {
        (self.on_event)(sys, msg);
    }
}

/// Wraps closures as an [`EpService`]: `on_base_start` runs once in the base
/// process; `on_event` runs per delivery inside an event process.
pub fn ep_service_fn<B, F>(on_base_start: B, on_event: F) -> Box<dyn EpService>
where
    B: FnOnce(&mut Sys<'_>) + Send + 'static,
    F: Fn(&mut Sys<'_>, &Message) + Send + 'static,
{
    Box::new(FnEpService {
        on_base_start: Some(on_base_start),
        on_event,
    })
}

/// One record captured by a [`Recorder`] service.
#[derive(Clone, Debug)]
pub struct Received {
    /// The port the message arrived on.
    pub port: Handle,
    /// The payload.
    pub body: Value,
    /// The verification label delivered with the message.
    pub verify: Label,
}

/// A service that logs every delivered message; the backbone of the IPC
/// semantics tests ("did the message arrive, and with what?").
///
/// On start it creates one port, publishes it in the global environment
/// under the given key, and — because a fresh port is closed to everyone
/// (`p_R(p) = 0`) — resets the port label to `{3}` so any default process
/// can reach it. Tests that want restrictive port labels use
/// [`service_with_start`] directly.
pub struct Recorder {
    env_key: String,
    log: Arc<Mutex<Vec<Received>>>,
}

impl Recorder {
    /// Creates the recorder and a shared view of its log.
    pub fn new(env_key: &str) -> (Recorder, Arc<Mutex<Vec<Received>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (
            Recorder {
                env_key: env_key.to_string(),
                log: log.clone(),
            },
            log,
        )
    }
}

impl Service for Recorder {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(&self.env_key, Value::Handle(port));
    }

    fn on_message(&mut self, _sys: &mut Sys<'_>, msg: &Message) {
        self.log.lock().unwrap().push(Received {
            port: msg.port,
            body: msg.body.clone(),
            verify: msg.verify.clone(),
        });
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::Category;
    use crate::kernel::Kernel;

    #[test]
    fn service_fn_handles_messages() {
        let mut kernel = Kernel::new(1);
        let count = Arc::new(Mutex::new(0));
        let c2 = count.clone();
        let pid = kernel.spawn(
            "counter",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("counter.port", Value::Handle(p));
                },
                move |_sys, _msg| {
                    *c2.lock().unwrap() += 1;
                },
            ),
        );
        let port = kernel
            .global_env("counter.port")
            .unwrap()
            .as_handle()
            .unwrap();
        kernel.inject(port, Value::Unit);
        kernel.inject(port, Value::Unit);
        kernel.run();
        assert_eq!(*count.lock().unwrap(), 2);
        assert_eq!(kernel.process(pid).name, "counter");
    }

    #[test]
    fn recorder_receives_injected_messages() {
        let mut kernel = Kernel::new(1);
        let (rec, log) = Recorder::new("rec.port");
        kernel.spawn("rec", Category::Other, Box::new(rec));
        let port = kernel.global_env("rec.port").unwrap().as_handle().unwrap();
        kernel.inject(port, Value::U64(41));
        kernel.run();
        let entries = log.lock().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].body, Value::U64(41));
        assert_eq!(entries[0].port, port);
    }
}
