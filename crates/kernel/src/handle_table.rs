//! The vnode table: kernel state for every active handle (§5.6).
//!
//! "In kernel space, each active handle corresponds to a 64-byte data
//! structure called a vnode. For port handles, this structure includes the
//! port label and a reference to the process with receive rights. A hash
//! table maps handle values to vnodes."

use std::collections::BTreeMap;

use asbestos_labels::{Handle, HandleAllocator, Label, Level};

use crate::ids::{EpId, ProcessId};

/// Accounted size of a vnode (§5.6).
pub const VNODE_BYTES: usize = 64;

/// Who holds receive rights for a port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortOwner {
    /// An ordinary process, or the base process of an event-process service.
    Process(ProcessId),
    /// A specific event process.
    Ep(EpId),
}

/// Kernel state for a port handle.
#[derive(Clone, Debug)]
pub struct PortState {
    /// The port receive label `p_R` (§5.5).
    pub label: Label,
    /// Receive rights; `None` once dissociated (messages are then dropped).
    pub owner: Option<PortOwner>,
}

/// What a handle currently names.
#[derive(Clone, Debug)]
pub enum VnodeKind {
    /// A pure compartment: participates in labels only.
    Compartment,
    /// A communication port (which is also usable as a compartment — the
    /// shared namespace is what §5.5 builds capabilities from).
    Port(PortState),
}

/// A vnode: kernel bookkeeping for one active handle.
#[derive(Clone, Debug)]
pub struct Vnode {
    /// Current role of the handle.
    pub kind: VnodeKind,
}

/// The handle → vnode map plus the encrypted-counter allocator.
pub struct HandleTable {
    vnodes: BTreeMap<Handle, Vnode>,
    allocator: HandleAllocator,
}

impl HandleTable {
    /// Creates a table whose allocator is keyed from `seed`.
    pub fn new(seed: u64) -> HandleTable {
        HandleTable::with_partition(seed, 0, 1)
    }

    /// Creates a table owning one lane of a partitioned allocator: all
    /// lanes share the seed-keyed cipher (one handle namespace) but draw
    /// disjoint counters, so kernel shards never mint colliding handles.
    pub fn with_partition(seed: u64, lane: u64, lanes: u64) -> HandleTable {
        HandleTable {
            vnodes: BTreeMap::new(),
            allocator: HandleAllocator::with_partition(seed, lane, lanes),
        }
    }

    /// Allocates a fresh compartment handle (the `new_handle` syscall's
    /// kernel half; the caller is responsible for setting `P_S(h) = ⋆`).
    pub fn new_handle(&mut self) -> Handle {
        let h = self.allocator.alloc();
        self.vnodes.insert(
            h,
            Vnode {
                kind: VnodeKind::Compartment,
            },
        );
        h
    }

    /// Allocates a fresh port handle with the Figure 4 `new_port` semantics:
    /// the port label is the caller's `label` with `p_R(p) ← 0` applied.
    pub fn new_port(&mut self, mut label: Label, owner: PortOwner) -> Handle {
        let h = self.allocator.alloc();
        label.set(h, Level::L0);
        self.vnodes.insert(
            h,
            Vnode {
                kind: VnodeKind::Port(PortState {
                    label,
                    owner: Some(owner),
                }),
            },
        );
        h
    }

    /// Looks up a vnode.
    pub fn get(&self, h: Handle) -> Option<&Vnode> {
        self.vnodes.get(&h)
    }

    /// Port state for `h`, if `h` names a port.
    pub fn port(&self, h: Handle) -> Option<&PortState> {
        match self.vnodes.get(&h) {
            Some(Vnode {
                kind: VnodeKind::Port(p),
            }) => Some(p),
            _ => None,
        }
    }

    /// Mutable port state for `h`, if `h` names a port.
    pub fn port_mut(&mut self, h: Handle) -> Option<&mut PortState> {
        match self.vnodes.get_mut(&h) {
            Some(Vnode {
                kind: VnodeKind::Port(p),
            }) => Some(p),
            _ => None,
        }
    }

    /// Turns a port back into a plain compartment (receive rights dropped;
    /// the handle value stays valid in labels).
    pub fn dissociate(&mut self, h: Handle) {
        if let Some(v) = self.vnodes.get_mut(&h) {
            v.kind = VnodeKind::Compartment;
        }
    }

    /// Number of active handles.
    pub fn len(&self) -> usize {
        self.vnodes.len()
    }

    /// Whether any handles exist.
    pub fn is_empty(&self) -> bool {
        self.vnodes.is_empty()
    }

    /// Total handles ever allocated (god-mode, for accounting).
    pub fn allocated(&self) -> u64 {
        self.allocator.allocated()
    }

    /// Accounted kernel bytes: vnode structures plus port label storage.
    pub fn kernel_bytes(&self) -> usize {
        let mut bytes = self.vnodes.len() * VNODE_BYTES;
        for v in self.vnodes.values() {
            if let VnodeKind::Port(p) = &v.kind {
                bytes += p.label.heap_bytes();
            }
        }
        bytes
    }

    /// Removes a vnode wholesale for migration to another shard's table.
    /// Handle *values* stay valid everywhere (the cipher is shared across
    /// lanes); only receive rights move. The sending shard's local-port
    /// fast path keys off table membership, so after this the Router
    /// directory is authoritative for the handle.
    pub(crate) fn take_vnode(&mut self, h: Handle) -> Option<Vnode> {
        self.vnodes.remove(&h)
    }

    /// Installs a vnode exported by another shard ([`Self::take_vnode`]).
    /// The handle was allocated under the shared cipher, so no allocator
    /// state moves with it.
    pub(crate) fn adopt_vnode(&mut self, h: Handle, v: Vnode) {
        let prev = self.vnodes.insert(h, v);
        debug_assert!(prev.is_none(), "adopting a handle this shard already holds");
    }

    /// Iterates all ports owned by the given owner (used on exit paths).
    pub fn ports_owned_by(&self, owner: PortOwner) -> Vec<Handle> {
        self.vnodes
            .iter()
            .filter_map(|(&h, v)| match &v.kind {
                VnodeKind::Port(p) if p.owner == Some(owner) => Some(h),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_port_sets_own_entry_to_zero() {
        let mut t = HandleTable::new(1);
        let owner = PortOwner::Process(ProcessId(0));
        let p = t.new_port(Label::top(), owner);
        let state = t.port(p).unwrap();
        assert_eq!(state.label.get(p), Level::L0);
        assert_eq!(state.label.default_level(), Level::L3);
        assert_eq!(state.owner, Some(owner));
    }

    #[test]
    fn compartments_are_not_ports() {
        let mut t = HandleTable::new(1);
        let h = t.new_handle();
        assert!(t.get(h).is_some());
        assert!(t.port(h).is_none());
    }

    #[test]
    fn dissociate_keeps_handle() {
        let mut t = HandleTable::new(1);
        let p = t.new_port(Label::top(), PortOwner::Process(ProcessId(0)));
        t.dissociate(p);
        assert!(t.port(p).is_none());
        assert!(t.get(p).is_some(), "handle still valid as a compartment");
    }

    #[test]
    fn handles_are_unique_and_unpredictable() {
        let mut t = HandleTable::new(7);
        let a = t.new_handle();
        let b = t.new_handle();
        assert_ne!(a, b);
        assert_ne!(b.raw(), a.raw() + 1, "handles must not be sequential");
    }

    #[test]
    fn kernel_bytes_counts_vnodes_and_port_labels() {
        let mut t = HandleTable::new(1);
        t.new_handle();
        assert_eq!(t.kernel_bytes(), VNODE_BYTES);
        t.new_port(Label::top(), PortOwner::Process(ProcessId(0)));
        // Port adds a vnode plus its label storage (≥ 300 bytes).
        assert!(t.kernel_bytes() >= 2 * VNODE_BYTES + 300);
    }

    #[test]
    fn ports_owned_by_filters() {
        let mut t = HandleTable::new(1);
        let o1 = PortOwner::Process(ProcessId(0));
        let o2 = PortOwner::Ep(EpId(9));
        let p1 = t.new_port(Label::top(), o1);
        let p2 = t.new_port(Label::top(), o2);
        let p3 = t.new_port(Label::top(), o1);
        let mut mine = t.ports_owned_by(o1);
        mine.sort();
        let mut expect = vec![p1, p3];
        expect.sort();
        assert_eq!(mine, expect);
        assert_eq!(t.ports_owned_by(o2), vec![p2]);
    }
}
