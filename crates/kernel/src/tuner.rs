//! The self-tuning control loop: signals → policy → actuator.
//!
//! Every performance knob the kernel grew while being sharded — per-shard
//! delivery-cache capacity, shard placement — was static at deploy time,
//! so a Zipf-skewed user population leaves N−1 shards idle while one
//! shard cliffs. This module closes the loop: between drain rounds the
//! coordinator snapshots one observation window of per-shard counters
//! ([`Signals`]), feeds it to a [`TunePolicy`], and applies the returned
//! [`Action`]s. The design follows the "policy out of mechanism" rule:
//!
//! * **Signals** are plain counter deltas — no policy reads live kernel
//!   structures, so a policy is testable in isolation by feeding it
//!   synthetic windows.
//! * **The policy** ([`DefaultPolicy`], or anything implementing
//!   [`TunePolicy`]) decides; thresholds live here, not in the drain
//!   loop.
//! * **The actuator** is the coordinator (`Kernel::tune`), which owns
//!   `&mut` everything between rounds and can therefore resize caches
//!   and migrate whole processes without any locking.
//!
//! Determinism contract: the loop only runs when the kernel is already
//! scheduling nondeterministically (`shards > 1` *and* parallel pool
//! workers). With `ASBESTOS_WORKERS=1`, `shards == 1`, or
//! `ASBESTOS_TUNE=off` the tuner is inert and the golden-trace suites
//! (`shard_determinism`, `netd_determinism`) see bit-identical runs —
//! pinned by test. Every action is semantically invisible: cache sizing
//! never changes a Figure 4 verdict (fingerprint keys), and a steal
//! moves a process *wholesale* — labels, memory, ports, and whole
//! per-port queues — so delivery order per sender per port and every
//! verdict are preserved (pinned by proptest).

use asbestos_labels::Handle;

/// One shard's contribution to an observation window. All counter
/// fields are deltas since the previous window; capacity/length fields
/// are point-in-time.
#[derive(Clone, Debug, Default)]
pub struct ShardSignals {
    /// Real host nanoseconds this shard's delivery loop ran this window.
    pub busy_nanos: u64,
    /// Messages delivered this window.
    pub delivered: u64,
    /// Delivery-cache hits this window.
    pub cache_hits: u64,
    /// Delivery-cache misses this window.
    pub cache_misses: u64,
    /// Delivery-cache evictions this window (capacity pressure).
    pub cache_evictions: u64,
    /// Cached decisions right now.
    pub cache_len: usize,
    /// The cache bound right now (0 = caching disabled by the operator;
    /// the default policy never resurrects a disabled cache).
    pub cache_capacity: usize,
    /// Deepest this shard's mailboxes have ever been.
    pub queue_depth_hwm: u64,
    /// Per-port backpressure drops this window.
    pub port_queue_drops: u64,
    /// Steal-eligible destination ports by message arrivals this window,
    /// hottest first. The actuator pre-filters to ports whose owning
    /// process can actually migrate, so a policy may pick any entry.
    pub hot_ports: Vec<(Handle, u64)>,
    /// This shard's shed threshold right now (point-in-time): the
    /// mailbox depth at which `Sys::overloaded` reports true.
    /// `usize::MAX` means never shed; 0 marks a window with no shed
    /// state at all (synthetic test windows), which the default policy's
    /// shed loop skips.
    pub shed_threshold: usize,
}

/// One observation window across all shards.
#[derive(Clone, Debug, Default)]
pub struct Signals {
    /// Per-shard windows, indexed by shard id.
    pub shards: Vec<ShardSignals>,
}

impl Signals {
    /// Index of the busiest shard this window.
    pub fn hottest(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.busy_nanos)
            .map_or(0, |(i, _)| i)
    }

    /// Index of the idlest shard this window.
    pub fn idlest(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.busy_nanos)
            .map_or(0, |(i, _)| i)
    }

    /// Mean per-shard busy nanoseconds this window.
    pub fn mean_busy(&self) -> u64 {
        if self.shards.is_empty() {
            return 0;
        }
        self.shards.iter().map(|s| s.busy_nanos).sum::<u64>() / self.shards.len() as u64
    }
}

/// An adjustment a policy asks the actuator to make.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Rebound one shard's delivery cache.
    SetCacheCapacity {
        /// Which shard.
        shard: usize,
        /// New bound, in cached decisions.
        capacity: usize,
    },
    /// Steal `port`'s owner: migrate the owning process — its labels,
    /// memory, every port it owns, and each port's *whole* pending
    /// mailbox queue — onto `to_shard`, re-registering the ports in the
    /// Router directory. Queues move in one piece (never message by
    /// message), preserving per-sender-per-port FIFO; and because the
    /// owner moves with its ports, label evaluation keeps running on
    /// the shard that owns the destination's data.
    StealPort {
        /// A hot destination port (from [`ShardSignals::hot_ports`]).
        port: Handle,
        /// Destination shard.
        to_shard: usize,
    },
    /// Move one shard's shed threshold — the mailbox depth at which
    /// `Sys::overloaded` tells deployment-side shedders (netd accept
    /// paths) to refuse new work at the edge. The credit loop itself
    /// needs no actions (it is self-clocked inside each shard); this is
    /// the knob that adapts *when load is refused before it is queued*.
    SetShedThreshold {
        /// Which shard.
        shard: usize,
        /// New threshold (`usize::MAX` = never shed).
        threshold: usize,
    },
}

/// A tuning policy: pure decision logic over counter windows.
///
/// [`TunePolicy::observe`] feeds every window (streak bookkeeping,
/// smoothing); [`TunePolicy::adjust`] asks for actions. The actuator
/// calls both once per window, in that order. Policies never see live
/// kernel structures, so they are testable in isolation.
pub trait TunePolicy: Send {
    /// Feeds one observation window.
    fn observe(&mut self, signals: &Signals);

    /// Requests adjustments after an [`TunePolicy::observe`].
    fn adjust(&mut self, signals: &Signals) -> Vec<Action>;
}

/// Hottest-shard busy time below which the default policy does nothing
/// in a window. Keeps small deterministic workloads (every functional
/// test) untouched while being far below one bench round.
pub const DEFAULT_MIN_BUSY_NANOS: u64 = 1_000_000;

/// Hottest-to-mean busy ratio past which a window counts as imbalanced.
pub const DEFAULT_STEAL_RATIO: f64 = 1.3;

/// Consecutive imbalanced windows before a steal fires.
pub const DEFAULT_STEAL_PATIENCE: u32 = 2;

/// Window hit rate below which an evicting cache grows.
pub const DEFAULT_GROW_BELOW_HIT_RATE: f64 = 0.90;

/// Total cached-decision budget across all shards (the kmem bound the
/// cache loop grows within): 4× the static per-shard default.
pub const DEFAULT_CACHE_BUDGET_ENTRIES: usize = 4 * crate::DEFAULT_DELIVERY_CACHE_CAP;

/// Smallest bound the shrink path leaves a live cache.
pub const DEFAULT_CACHE_FLOOR: usize = 1 << 10;

/// Smallest shed threshold the tightening path ever sets: shedding at a
/// backlog of a few messages would refuse work on scheduling noise.
pub const DEFAULT_SHED_FLOOR: usize = 64;

/// Threshold past which the relaxation path stops shedding entirely
/// (jumps to `usize::MAX`) rather than carrying an ever-doubling number.
pub const DEFAULT_SHED_CEILING: usize = 1 << 16;

/// The built-in policy: multiplicative cache grow/shrink by hit rate
/// within a kmem budget, and hot-port stealing after sustained
/// imbalance. All thresholds are public fields so benches and tests can
/// run the same logic with different constants.
#[derive(Clone, Debug)]
pub struct DefaultPolicy {
    /// Do nothing in windows whose hottest shard ran less than this.
    pub min_busy_nanos: u64,
    /// Hottest/mean busy ratio that counts as imbalance.
    pub steal_ratio: f64,
    /// Consecutive imbalanced windows before stealing.
    pub steal_patience: u32,
    /// Grow an evicting shard's cache while its hit rate is below this.
    pub grow_below_hit_rate: f64,
    /// Total cache budget (entries) across shards.
    pub cache_budget_entries: usize,
    /// Smallest capacity the shrink path leaves.
    pub cache_floor: usize,
    /// Smallest shed threshold the tightening path sets.
    pub shed_floor: usize,
    /// Shed threshold past which relaxation disables shedding.
    pub shed_ceiling: usize,
    /// Imbalance streak (bookkeeping fed by `observe`).
    imbalanced_windows: u32,
}

impl Default for DefaultPolicy {
    fn default() -> DefaultPolicy {
        DefaultPolicy {
            min_busy_nanos: DEFAULT_MIN_BUSY_NANOS,
            steal_ratio: DEFAULT_STEAL_RATIO,
            steal_patience: DEFAULT_STEAL_PATIENCE,
            grow_below_hit_rate: DEFAULT_GROW_BELOW_HIT_RATE,
            cache_budget_entries: DEFAULT_CACHE_BUDGET_ENTRIES,
            cache_floor: DEFAULT_CACHE_FLOOR,
            shed_floor: DEFAULT_SHED_FLOOR,
            shed_ceiling: DEFAULT_SHED_CEILING,
            imbalanced_windows: 0,
        }
    }
}

impl DefaultPolicy {
    fn window_imbalanced(&self, s: &Signals) -> bool {
        if s.shards.len() <= 1 {
            return false;
        }
        let hot = &s.shards[s.hottest()];
        hot.busy_nanos >= self.min_busy_nanos
            && !hot.hot_ports.is_empty()
            && hot.busy_nanos as f64 > self.steal_ratio * s.mean_busy() as f64
    }
}

impl TunePolicy for DefaultPolicy {
    fn observe(&mut self, signals: &Signals) {
        if self.window_imbalanced(signals) {
            self.imbalanced_windows += 1;
        } else {
            self.imbalanced_windows = 0;
        }
    }

    fn adjust(&mut self, signals: &Signals) -> Vec<Action> {
        let mut actions = Vec::new();
        let n = signals.shards.len();
        if n <= 1 {
            return actions;
        }
        let hottest_busy = signals.shards[signals.hottest()].busy_nanos;
        if hottest_busy < self.min_busy_nanos {
            // Activity floor: below it the window carries no usable
            // signal (and tiny deterministic test workloads stay
            // untouched even when the loop is armed).
            return actions;
        }

        // --- Feedback loop 1: adaptive cache capacity. -----------------
        let mut total_cap: usize = signals.shards.iter().map(|s| s.cache_capacity).sum();
        for (i, sh) in signals.shards.iter().enumerate() {
            let lookups = sh.cache_hits + sh.cache_misses;
            if sh.cache_capacity == 0 {
                // Operator disabled caching (ablation); never resurrect.
                continue;
            }
            if lookups > 0 {
                let hit_rate = sh.cache_hits as f64 / lookups as f64;
                if sh.cache_evictions > 0 && hit_rate < self.grow_below_hit_rate {
                    // Thrashing: the working set exceeds the bound. Grow
                    // multiplicatively while the global budget allows.
                    let new_cap = sh.cache_capacity.saturating_mul(2);
                    if total_cap - sh.cache_capacity + new_cap <= self.cache_budget_entries {
                        total_cap = total_cap - sh.cache_capacity + new_cap;
                        actions.push(Action::SetCacheCapacity {
                            shard: i,
                            capacity: new_cap,
                        });
                    }
                }
            } else if sh.cache_capacity > self.cache_floor && sh.cache_len <= sh.cache_capacity / 4
            {
                // Idle and mostly empty: give the budget back.
                let new_cap = (sh.cache_capacity / 2).max(self.cache_floor);
                total_cap = total_cap - sh.cache_capacity + new_cap;
                actions.push(Action::SetCacheCapacity {
                    shard: i,
                    capacity: new_cap,
                });
            }
        }

        // --- Feedback loop 2: adaptive shed threshold. -----------------
        // AIMD on the overload-shed knob, per shard: port-bound drops
        // mean queueing has already failed — tighten sharply so netd
        // refuses work at the edge instead; a clean window relaxes the
        // threshold multiplicatively until shedding turns off again.
        // Strictly per-shard signals in, per-shard actions out: one
        // shard's flood never moves another shard's threshold (the
        // hygiene test below pins this).
        for (i, sh) in signals.shards.iter().enumerate() {
            if sh.shed_threshold == 0 {
                // No shed state in this window (synthetic tests).
                continue;
            }
            if sh.port_queue_drops > 0 {
                let target = ((sh.queue_depth_hwm / 2) as usize).max(self.shed_floor);
                if target < sh.shed_threshold {
                    actions.push(Action::SetShedThreshold {
                        shard: i,
                        threshold: target,
                    });
                }
            } else if sh.shed_threshold != usize::MAX {
                let relaxed = sh.shed_threshold.saturating_mul(2);
                let threshold = if relaxed > self.shed_ceiling {
                    usize::MAX
                } else {
                    relaxed
                };
                actions.push(Action::SetShedThreshold {
                    shard: i,
                    threshold,
                });
            }
        }

        // --- Feedback loop 3: hot-shard work stealing. -----------------
        if self.imbalanced_windows >= self.steal_patience {
            let hottest = signals.hottest();
            let idlest = signals.idlest();
            if hottest != idlest {
                let hot = &signals.shards[hottest];
                let gap = hot.busy_nanos - signals.shards[idlest].busy_nanos;
                let denom = hot.delivered.max(1);
                // A port's busy share ≈ its arrival share of the shard's
                // deliveries. Steal the *largest* port that fits in half
                // the hot–idle gap: moving a port bigger than the gap
                // would just relocate the hotspot onto the idle shard
                // and ping-pong it back next window. A single mega-port
                // that dwarfs the gap is therefore never stolen — its
                // shard simply keeps it while smaller ports drain away.
                let fits = |arrivals: u64| {
                    let est = hot.busy_nanos as u128 * arrivals as u128 / denom as u128;
                    est * 2 <= gap as u128
                };
                if let Some(&(port, _)) = hot.hot_ports.iter().find(|&&(_, a)| fits(a)) {
                    actions.push(Action::StealPort {
                        port,
                        to_shard: idlest,
                    });
                    // Stay primed rather than restarting the full
                    // patience count: the patience filter gates the
                    // *onset* (a noise streak must persist to fire at
                    // all), but once genuine imbalance is established,
                    // every further imbalanced window — each computed
                    // from fresh post-steal signals, so the half-gap
                    // rule re-checks against the new distribution — may
                    // steal again. One balanced window still resets to
                    // zero via `observe`.
                    self.imbalanced_windows = self.steal_patience.saturating_sub(1);
                }
            }
        }
        actions
    }
}

/// Cumulative per-shard counter sample; consecutive samples bound one
/// observation window (the actuator stores the previous one).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardSample {
    pub(crate) busy_nanos: u64,
    pub(crate) delivered: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cache_evictions: u64,
    pub(crate) port_queue_drops: u64,
}

/// The coordinator's tuning state: the installed policy plus the
/// windowing bookkeeping. Lives on `Kernel`; the actuator methods
/// (`Kernel::tune`, `Kernel::migrate_port_owner`) are in `kernel.rs`
/// because they need `&mut` over the shards.
pub(crate) struct TunerState {
    pub(crate) policy: Box<dyn TunePolicy>,
    /// Previous cumulative sample per shard; empty until the loop arms.
    pub(crate) last: Vec<ShardSample>,
    /// The `ASBESTOS_TUNE` knob, read at kernel construction.
    pub(crate) env_enabled: bool,
    /// Programmatic override (benches pin tuning on/off per run).
    pub(crate) override_enabled: Option<bool>,
    /// Actions actually applied (the determinism guard pins this at 0
    /// for sequential configurations).
    pub(crate) actions_applied: u64,
}

impl TunerState {
    pub(crate) fn new() -> TunerState {
        TunerState {
            policy: Box::new(DefaultPolicy::default()),
            last: Vec::new(),
            env_enabled: default_tune_enabled(),
            override_enabled: None,
            actions_applied: 0,
        }
    }

    /// Accounted bookkeeping bytes (goes into `KmemReport::tuner_bytes`;
    /// zero until the loop arms, so untuned kernels report nothing).
    pub(crate) fn bytes(&self) -> usize {
        self.last.capacity() * std::mem::size_of::<ShardSample>()
    }
}

/// Parses an `ASBESTOS_TUNE`-style value: everything except `off`/`0`
/// (case-insensitive) arms the loop. Unset means on — the tuner already
/// gates itself on nondeterministic scheduling being in effect.
pub(crate) fn tune_enabled_from(value: Option<&str>) -> bool {
    crate::knobs::parse_enabled(value)
}

/// Reads the `ASBESTOS_TUNE` knob.
pub(crate) fn default_tune_enabled() -> bool {
    tune_enabled_from(crate::knobs::raw(crate::knobs::TUNE_ENV).as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(busy: &[u64]) -> Signals {
        Signals {
            shards: busy
                .iter()
                .map(|&b| ShardSignals {
                    busy_nanos: b,
                    // One modest port (10% of the shard's deliveries):
                    // always within the half-gap bound when the window
                    // is imbalanced enough to steal at all.
                    delivered: 100,
                    cache_capacity: 1 << 10,
                    hot_ports: vec![(Handle::from_raw(7), 10)],
                    ..ShardSignals::default()
                })
                .collect(),
        }
    }

    #[test]
    fn knob_parsing() {
        assert!(tune_enabled_from(None));
        assert!(tune_enabled_from(Some("on")));
        assert!(tune_enabled_from(Some("ON")));
        assert!(!tune_enabled_from(Some("off")));
        assert!(!tune_enabled_from(Some("OFF")));
        assert!(!tune_enabled_from(Some("0")));
        assert!(!tune_enabled_from(Some("false")));
    }

    #[test]
    fn activity_floor_gates_everything() {
        let mut p = DefaultPolicy::default();
        // Wildly imbalanced but microscopic: no window may act.
        let s = window(&[900, 1, 1, 1]);
        for _ in 0..10 {
            p.observe(&s);
            assert!(p.adjust(&s).is_empty(), "sub-floor window acted");
        }
    }

    #[test]
    fn sustained_imbalance_steals_to_the_idlest_shard() {
        let mut p = DefaultPolicy::default();
        let s = window(&[40_000_000, 2_000_000, 3_000_000, 1_000_000]);
        p.observe(&s);
        assert!(
            p.adjust(&s)
                .iter()
                .all(|a| !matches!(a, Action::StealPort { .. })),
            "one imbalanced window must not steal (patience)"
        );
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(
            actions.contains(&Action::StealPort {
                port: Handle::from_raw(7),
                to_shard: 3,
            }),
            "two imbalanced windows steal the hot port to the idlest shard: {actions:?}"
        );
    }

    #[test]
    fn steal_skips_a_mega_port_that_would_overshoot() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[40_000_000, 30_000_000, 30_000_000, 20_000_000]);
        // Port 7 carries 90% of the hot shard's load — moving it would
        // make the idle shard hotter than the source ever was. Port 8
        // (4% → 1.6 ms) fits in half the 20 ms gap and is taken instead.
        s.shards[0].hot_ports = vec![(Handle::from_raw(7), 90), (Handle::from_raw(8), 4)];
        p.observe(&s);
        p.adjust(&s);
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(
            actions.contains(&Action::StealPort {
                port: Handle::from_raw(8),
                to_shard: 3,
            }),
            "the largest port fitting the half-gap is stolen: {actions:?}"
        );
        assert!(
            !actions.iter().any(
                |a| matches!(a, Action::StealPort { port, .. } if *port == Handle::from_raw(7))
            ),
            "the mega-port must stay put"
        );
    }

    #[test]
    fn no_steal_when_every_port_overshoots() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[40_000_000, 30_000_000, 30_000_000, 20_000_000]);
        s.shards[0].hot_ports = vec![(Handle::from_raw(7), 100)];
        for _ in 0..6 {
            p.observe(&s);
            let actions = p.adjust(&s);
            assert!(
                actions
                    .iter()
                    .all(|a| !matches!(a, Action::StealPort { .. })),
                "an unsplittable hotspot is left alone: {actions:?}"
            );
        }
    }

    #[test]
    fn balanced_windows_reset_patience() {
        let mut p = DefaultPolicy::default();
        let hot = window(&[40_000_000, 2_000_000, 3_000_000, 1_000_000]);
        let calm = window(&[10_000_000, 9_000_000, 11_000_000, 10_000_000]);
        p.observe(&hot);
        p.adjust(&hot);
        p.observe(&calm);
        p.adjust(&calm);
        p.observe(&hot);
        let actions = p.adjust(&hot);
        assert!(
            actions
                .iter()
                .all(|a| !matches!(a, Action::StealPort { .. })),
            "a calm window resets the imbalance streak"
        );
    }

    #[test]
    fn thrashing_cache_grows_within_budget_and_idle_cache_shrinks() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[10_000_000, 10_000_000]);
        // Shard 0 thrashes: lookups with low hit rate and evictions.
        s.shards[0].cache_hits = 10;
        s.shards[0].cache_misses = 990;
        s.shards[0].cache_evictions = 500;
        s.shards[0].cache_capacity = 1 << 12;
        // Shard 1 is idle with a big, mostly-empty cache.
        s.shards[1].cache_capacity = 1 << 14;
        s.shards[1].cache_len = 10;
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(actions.contains(&Action::SetCacheCapacity {
            shard: 0,
            capacity: 1 << 13,
        }));
        assert!(actions.contains(&Action::SetCacheCapacity {
            shard: 1,
            capacity: 1 << 13,
        }));
    }

    #[test]
    fn cache_growth_respects_the_global_budget() {
        let mut p = DefaultPolicy {
            cache_budget_entries: 1 << 12,
            ..DefaultPolicy::default()
        };
        let mut s = window(&[10_000_000, 10_000_000]);
        for sh in &mut s.shards {
            sh.cache_hits = 0;
            sh.cache_misses = 1000;
            sh.cache_evictions = 900;
            sh.cache_capacity = 1 << 11;
        }
        p.observe(&s);
        // Budget 4096, current total 4096: no growth fits.
        assert!(p.adjust(&s).is_empty());
    }

    /// Covert-channel hygiene at the policy layer: a flooding user's
    /// thrash signals on its own shard never change what the policy does
    /// to a healthy shard's cache, and any steal it provokes targets
    /// only the flooded shard's ports.
    #[test]
    fn flood_on_one_shard_never_acts_on_a_healthy_shard() {
        let healthy = |s: &mut Signals| {
            s.shards[0].cache_hits = 990;
            s.shards[0].cache_misses = 10;
            s.shards[0].cache_evictions = 0;
            s.shards[0].cache_len = 100;
            s.shards[0].hot_ports = vec![(Handle::from_raw(40), 5)];
        };
        // Quiet system: shard 1 idle-but-present.
        let mut quiet = window(&[5_000_000, 5_000_000, 5_000_000, 5_000_000]);
        healthy(&mut quiet);
        // Flooded system: shard 1 thrashes its cache, drops at its port
        // bounds, and dominates busy time with two steal-eligible ports.
        for sh in &mut quiet.shards {
            sh.shed_threshold = usize::MAX;
        }
        let mut noisy = window(&[5_000_000, 60_000_000, 5_000_000, 5_000_000]);
        healthy(&mut noisy);
        for sh in &mut noisy.shards {
            sh.shed_threshold = usize::MAX;
        }
        noisy.shards[1].cache_hits = 10;
        noisy.shards[1].cache_misses = 990;
        noisy.shards[1].cache_evictions = 500;
        noisy.shards[1].delivered = 10_000;
        noisy.shards[1].port_queue_drops = 5_000;
        noisy.shards[1].queue_depth_hwm = 50_000;
        noisy.shards[1].hot_ports =
            vec![(Handle::from_raw(50), 2_000), (Handle::from_raw(51), 1_500)];

        let on_shard0 = |s: &Signals| {
            let mut p = DefaultPolicy::default();
            let mut acts = Vec::new();
            for _ in 0..4 {
                p.observe(s);
                acts.extend(p.adjust(s));
            }
            acts.retain(|a| match a {
                Action::SetCacheCapacity { shard, .. } => *shard == 0,
                Action::StealPort { port, .. } => *port == Handle::from_raw(40),
                Action::SetShedThreshold { shard, .. } => *shard == 0,
            });
            acts
        };
        assert_eq!(
            on_shard0(&quiet),
            on_shard0(&noisy),
            "shard 0's treatment is independent of shard 1's flood"
        );
        assert!(
            on_shard0(&noisy).is_empty(),
            "a healthy shard is left alone entirely"
        );
    }

    #[test]
    fn drops_tighten_the_shed_threshold_and_clean_windows_relax_it() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[10_000_000, 10_000_000]);
        for sh in &mut s.shards {
            sh.shed_threshold = usize::MAX;
        }
        // Shard 0 drops at its port bound with a deep backlog: tighten
        // to half the observed peak.
        s.shards[0].port_queue_drops = 100;
        s.shards[0].queue_depth_hwm = 4_000;
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(actions.contains(&Action::SetShedThreshold {
            shard: 0,
            threshold: 2_000,
        }));
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, Action::SetShedThreshold { shard: 1, .. })),
            "the clean shard's threshold stays at MAX (no relax action needed)"
        );
        // Clean windows double the threshold back up, then disable
        // shedding past the ceiling.
        s.shards[0].port_queue_drops = 0;
        s.shards[0].shed_threshold = 2_000;
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(actions.contains(&Action::SetShedThreshold {
            shard: 0,
            threshold: 4_000,
        }));
        s.shards[0].shed_threshold = DEFAULT_SHED_CEILING;
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(actions.contains(&Action::SetShedThreshold {
            shard: 0,
            threshold: usize::MAX,
        }));
    }

    #[test]
    fn shed_threshold_never_tightens_below_the_floor() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[10_000_000, 10_000_000]);
        s.shards[0].shed_threshold = usize::MAX;
        s.shards[0].port_queue_drops = 10;
        // A shallow backlog (hwm 20 → half is 10) clamps to the floor.
        s.shards[0].queue_depth_hwm = 20;
        p.observe(&s);
        let actions = p.adjust(&s);
        assert!(actions.contains(&Action::SetShedThreshold {
            shard: 0,
            threshold: DEFAULT_SHED_FLOOR,
        }));
    }

    #[test]
    fn disabled_cache_stays_disabled() {
        let mut p = DefaultPolicy::default();
        let mut s = window(&[10_000_000, 10_000_000]);
        s.shards[0].cache_capacity = 0;
        s.shards[0].cache_misses = 1000;
        s.shards[0].cache_evictions = 0;
        p.observe(&s);
        assert!(
            p.adjust(&s)
                .iter()
                .all(|a| !matches!(a, Action::SetCacheCapacity { shard: 0, .. })),
            "the ablation configuration must survive tuning"
        );
    }
}
