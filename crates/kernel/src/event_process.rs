//! Event processes: lightweight isolated contexts within a process (§6).

use std::sync::Arc;

use asbestos_labels::{Handle, Label};

use crate::ids::ProcessId;
use crate::memory::PageDelta;

/// Accounted size of the event-process kernel structure (§6: "a send label,
/// a receive label, receive rights for ports, and a set of private memory
/// pages, plus some bookkeeping information, altogether occupying 44 bytes
/// of Asbestos kernel memory").
pub const EP_STRUCT_BYTES: usize = 44;

/// Kernel state for one event process.
///
/// An event process abstracts "a subset of process state belonging to a
/// single user" (§6.1): its own labels, its own receive rights, and a
/// copy-on-write delta over the base process's memory. Everything else —
/// code, base memory, scheduling — is shared with the base process, which
/// is why thousands of event processes cost little more than one process.
pub struct EventProcess {
    /// The owning base process.
    pub process: ProcessId,
    /// This event process's send label (starts sharing the base's storage;
    /// `Arc`-copy-on-write thereafter).
    pub send_label: Arc<Label>,
    /// This event process's receive label (starts sharing the base's).
    pub recv_label: Arc<Label>,
    /// Ports this event process holds receive rights for.
    pub ports: Vec<Handle>,
    /// Private modified pages (copy-on-write delta over the base).
    pub delta: PageDelta,
    /// Whether the event process is alive (false after `ep_exit`).
    pub alive: bool,
    /// Number of times this event process has been scheduled.
    pub activations: u64,
}

impl EventProcess {
    /// Creates a fresh event process with labels copied from the base.
    ///
    /// §6.1: "The event process starts with send and receive labels copied
    /// from the base process's labels, no receive rights, and no private
    /// memory pages."
    pub fn new(process: ProcessId, send_label: Arc<Label>, recv_label: Arc<Label>) -> EventProcess {
        EventProcess {
            process,
            send_label,
            recv_label,
            ports: Vec::new(),
            delta: PageDelta::new(),
            alive: true,
            activations: 0,
        }
    }

    /// Accounted kernel bytes: the 44-byte structure plus label storage.
    ///
    /// Labels are counted separately from the fixed structure because the
    /// paper does the same (Figure 6 attributes label memory to the kernel
    /// overhead that makes sessions cost ~1.5 pages rather than 1).
    pub fn kernel_bytes(&self) -> usize {
        EP_STRUCT_BYTES + self.send_label.heap_bytes() + self.recv_label.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ep_matches_paper() {
        let ep = EventProcess::new(
            ProcessId(3),
            Arc::new(Label::default_send()),
            Arc::new(Label::default_recv()),
        );
        assert!(ep.ports.is_empty(), "no receive rights");
        assert!(ep.delta.is_empty(), "no private pages");
        assert!(ep.alive);
        assert_eq!(ep.activations, 0);
    }

    #[test]
    fn kernel_bytes_is_struct_plus_labels() {
        let ep = EventProcess::new(
            ProcessId(0),
            Arc::new(Label::default_send()),
            Arc::new(Label::default_recv()),
        );
        // Compute the expected label bytes from the labels themselves:
        // this test pins the *sum structure* (struct + both labels), not
        // the labels' internal representation, which is free to change.
        let label_bytes = ep.send_label.heap_bytes() + ep.recv_label.heap_bytes();
        assert!(label_bytes > 0, "default labels occupy heap");
        assert_eq!(ep.kernel_bytes(), EP_STRUCT_BYTES + label_bytes);
    }
}
