//! The system-call surface handed to running services.

use asbestos_labels::{Handle, Label, Level};

use crate::backpressure::SendVerdict;
use crate::cycles::Category;
use crate::error::{SysError, SysResult};
use crate::handle_table::PortOwner;
use crate::ids::{EpId, ExecCtx, ProcessId};
use crate::memory::{page_segments, PAGE_SIZE};
use crate::message::SendArgs;
use crate::process::{Body, EpService, Service};
use crate::router::Router;
use crate::shard::KernelShard;
use crate::value::Value;

/// The system-call interface for the currently executing context.
///
/// A `Sys` is constructed by the kernel for each handler invocation. When
/// the context is an event process, label operations, port creation, and
/// memory writes resolve against the event process's private state (§6.1);
/// otherwise they act on the (base) process.
///
/// Every operation resolves against the executing context's own shard —
/// processes, event processes, ports, and frames are shard-local by
/// construction — except sends to remote ports (which queue into the
/// shard's outbox for the router) and the global environment (which lives
/// behind the shared [`Router`]).
pub struct Sys<'k> {
    shard: &'k mut KernelShard,
    router: &'k Router,
    ctx: ExecCtx,
    is_new_ep: bool,
}

impl<'k> Sys<'k> {
    pub(crate) fn new(
        shard: &'k mut KernelShard,
        router: &'k Router,
        ctx: ExecCtx,
        is_new_ep: bool,
    ) -> Sys<'k> {
        Sys {
            shard,
            router,
            ctx,
            is_new_ep,
        }
    }

    // ------------------------------------------------------------------
    // Identity and environment.
    // ------------------------------------------------------------------

    /// The current process id (simulator bookkeeping, not a capability).
    pub fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    /// The current event process, if executing in one.
    pub fn ep_id(&self) -> Option<EpId> {
        self.ctx.ep
    }

    /// True exactly when this activation created a fresh event process.
    ///
    /// The paper's idiom is to check a memory location the base process
    /// initialized to zero (§6.1); this accessor is the ergonomic
    /// equivalent (the kernel knows it just forked the EP), and the memory
    /// idiom works too via [`Sys::mem_read`].
    pub fn is_new_ep(&self) -> bool {
        self.is_new_ep
    }

    /// The process's debug name.
    pub fn name(&self) -> &str {
        &self.shard.processes[self.ctx.pid.index()].name
    }

    /// Reads an environment entry: process-local first, then global (§4's
    /// bootstrap convention for discovering service port names).
    pub fn env(&self, key: &str) -> Option<Value> {
        let p = &self.shard.processes[self.ctx.pid.index()];
        p.env.get(key).cloned().or_else(|| self.router.env_get(key))
    }

    /// Sets a process-local environment entry (inherited by children).
    pub fn set_env(&mut self, key: &str, value: Value) {
        self.shard.processes[self.ctx.pid.index()]
            .env
            .insert(key.to_string(), value);
    }

    /// Publishes an entry in the global environment. Real Asbestos
    /// bootstraps through init-provided environments; the global namespace
    /// plays that role here.
    pub fn publish_env(&mut self, key: &str, value: Value) {
        self.router.env_set(key, value);
    }

    // ------------------------------------------------------------------
    // Handles, ports, labels.
    // ------------------------------------------------------------------

    /// `new_handle`: allocates a fresh compartment and grants the caller
    /// `⋆` for it (§5.3: "A process initially has privilege for every
    /// handle it creates").
    pub fn new_handle(&mut self) -> Handle {
        let h = self.shard.handles.new_handle();
        self.shard
            .clock
            .charge(Category::KernelIpc, self.shard.cost.new_handle);
        self.with_send_label(|l| l.set(h, Level::Star));
        h
    }

    /// `new_port`: allocates a port with receive rights for the caller.
    ///
    /// Per Figure 4 the kernel stores `label` with `p_R(p) ← 0` applied and
    /// sets `P_S(p) ← ⋆`, so initially nobody else can send to the port.
    pub fn new_port(&mut self, label: Label) -> Handle {
        let owner = match self.ctx.ep {
            Some(eid) => PortOwner::Ep(eid),
            None => PortOwner::Process(self.ctx.pid),
        };
        let p = self.shard.handles.new_port(label, owner);
        self.router.register_port(p, self.shard.id);
        self.shard
            .clock
            .charge(Category::KernelIpc, self.shard.cost.new_port);
        self.with_send_label(|l| l.set(p, Level::Star));
        if let Some(eid) = self.ctx.ep {
            self.shard.eps[eid.index()].ports.push(p);
        }
        p
    }

    /// `set_port_label`: replaces a port's label verbatim (Figure 4: unlike
    /// `new_port`, this call "doesn't modify its input").
    pub fn set_port_label(&mut self, port: Handle, label: Label) -> SysResult<()> {
        self.require_port_owner(port)?;
        self.shard
            .handles
            .port_mut(port)
            .expect("ownership verified above")
            .label = label;
        Ok(())
    }

    /// Reads a port's label; only the owner may observe it (port labels
    /// change dynamically and would otherwise be a storage channel).
    pub fn port_label(&self, port: Handle) -> SysResult<Label> {
        self.check_port_owner(port)?;
        Ok(self
            .shard
            .handles
            .port(port)
            .expect("ownership verified above")
            .label
            .clone())
    }

    /// Drops receive rights: the handle remains valid as a compartment, but
    /// messages sent to it are silently discarded.
    pub fn dissociate_port(&mut self, port: Handle) -> SysResult<()> {
        self.require_port_owner(port)?;
        self.shard.handles.dissociate(port);
        self.router.unregister_port(port);
        if let Some(eid) = self.ctx.ep {
            self.shard.eps[eid.index()].ports.retain(|&p| p != port);
        }
        Ok(())
    }

    /// The caller's current send label `P_S`.
    pub fn send_label(&self) -> Label {
        match self.ctx.ep {
            Some(eid) => (*self.shard.eps[eid.index()].send_label).clone(),
            None => (*self.shard.processes[self.ctx.pid.index()].send_label).clone(),
        }
    }

    /// The caller's current receive label `P_R`.
    pub fn recv_label(&self) -> Label {
        match self.ctx.ep {
            Some(eid) => (*self.shard.eps[eid.index()].recv_label).clone(),
            None => (*self.shard.processes[self.ctx.pid.index()].recv_label).clone(),
        }
    }

    /// Whether the caller holds declassification privilege for `h`.
    pub fn has_star(&self, h: Handle) -> bool {
        self.send_label().get(h) == Level::Star
    }

    /// Self-contamination: `P_S ← P_S ⊔ label`. Raising one's own send
    /// label requires no privilege — this is also the paper's "special
    /// variant of the send system call" for discarding `⋆` levels, since
    /// `max(⋆, ℓ) = ℓ`.
    pub fn self_contaminate(&mut self, label: &Label) {
        let new = self.send_label().lub(label);
        self.with_send_label(|l| *l = new.clone());
    }

    /// Voluntarily lowers the receive label: `P_R ← P_R ⊓ label`. Making a
    /// process more restrictive requires no privilege (§5.2's targeted
    /// exclusion policies use this).
    pub fn lower_recv_label(&mut self, label: &Label) {
        let new = self.recv_label().glb(label);
        self.with_recv_label(|l| *l = new.clone());
    }

    /// Raises the receive level for one handle; requires `P_S(h) = ⋆`
    /// (raising receive labels makes the system more permissive, §5.2, and
    /// is self-decontamination in Figure 4's terms).
    pub fn raise_recv(&mut self, h: Handle, level: Level) -> SysResult<()> {
        if level > self.recv_label().get(h) && !self.has_star(h) {
            return Err(SysError::PrivilegeViolation);
        }
        self.with_recv_label(|l| {
            if level > l.get(h) {
                l.set(h, level);
            }
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Messaging.
    // ------------------------------------------------------------------

    /// Sends a message with no optional labels.
    ///
    /// Like the real system call, success says nothing about delivery: the
    /// label checks run when the receiver is scheduled, and failures drop
    /// the message silently (§4). With backpressure armed the returned
    /// [`SendVerdict`] reports queue admission (delivered/deferred), and
    /// a sender persistently over its credit window gets
    /// [`SysError::WouldBlock`]; both are computed purely from the
    /// caller's own send history (see [`crate::backpressure`]).
    pub fn send(&mut self, port: Handle, body: Value) -> SysResult<SendVerdict> {
        self.send_args(port, body, &SendArgs::default())
    }

    /// Sends a message with optional labels (Figure 4's full `send`).
    ///
    /// Errors are returned only for conditions computable from the caller's
    /// own state (privilege requirements 2 and 3, and — with backpressure
    /// armed — the caller's own exhausted credit window); everything else
    /// is silent by design.
    pub fn send_args(
        &mut self,
        port: Handle,
        body: Value,
        args: &SendArgs,
    ) -> SysResult<SendVerdict> {
        self.shard
            .send_from(self.router, self.ctx, port, body, args)
    }

    /// The caller's remaining send credits for `port` (how many sends
    /// its next activation burst can make before they defer). Derived
    /// exclusively from the caller's own credit state, so exposing it
    /// leaks nothing. With backpressure off this is always the full
    /// default window.
    pub fn send_credit(&self, port: Handle) -> u32 {
        self.shard.bp.credit_state(self.ctx.pid, port).1
    }

    /// Whether the local shard's mailbox depth has crossed its shed
    /// threshold — the hint deployment-side shedders (netd accept paths)
    /// use to refuse new work at the edge instead of queueing it.
    ///
    /// This is deliberately a *deployment* facility, not a simulated-user
    /// one: aggregate shard load is the kind of whole-system timing
    /// signal §8 already concedes to a determined observer, and the
    /// trusted services that consult it (netd) are unlabeled. Labeled
    /// user code never sees it.
    pub fn overloaded(&self) -> bool {
        self.shard.mailboxes.len() >= self.shard.shed_threshold
    }

    // ------------------------------------------------------------------
    // Memory.
    // ------------------------------------------------------------------

    /// Writes bytes into the caller's address space. Inside an event
    /// process, touched pages become private copies (copy-on-write, §6.2).
    pub fn mem_write(&mut self, addr: u64, data: &[u8]) -> SysResult<()> {
        let segments = page_segments(addr, data.len())?;
        let mut offset = 0;
        for (vpn, page_off, len) in segments {
            let slice = &data[offset..offset + len];
            match self.ctx.ep {
                None => {
                    let pid = self.ctx.pid;
                    let frame = match self.shard.processes[pid.index()].page_table.get(vpn) {
                        Some(f) => f,
                        None => {
                            let f = self.shard.frames.alloc_zeroed();
                            self.shard.processes[pid.index()].page_table.map(vpn, f);
                            f
                        }
                    };
                    self.shard.frames.write(frame, page_off, slice);
                }
                Some(eid) => {
                    let frame = match self.shard.eps[eid.index()].delta.get(vpn) {
                        Some(f) => f,
                        None => {
                            // First write to this page: take a private copy
                            // of the base page (or a zero page).
                            let base = self.shard.processes[self.ctx.pid.index()]
                                .page_table
                                .get(vpn);
                            let f = match base {
                                Some(b) => self.shard.frames.alloc_copy_of(b),
                                None => self.shard.frames.alloc_zeroed(),
                            };
                            self.shard
                                .clock
                                .charge(Category::KernelIpc, self.shard.cost.page_copy);
                            self.shard.eps[eid.index()].delta.map(vpn, f);
                            f
                        }
                    };
                    self.shard.frames.write(frame, page_off, slice);
                }
            }
            offset += len;
        }
        Ok(())
    }

    /// Reads bytes from the caller's address space: the event process's
    /// private pages shadow the base process's; unmapped pages read as
    /// zeros.
    pub fn mem_read(&self, addr: u64, len: usize) -> SysResult<Vec<u8>> {
        let segments = page_segments(addr, len)?;
        let mut out = vec![0u8; len];
        let mut offset = 0;
        for (vpn, page_off, seg_len) in segments {
            let frame = self
                .ctx
                .ep
                .and_then(|eid| self.shard.eps[eid.index()].delta.get(vpn))
                .or_else(|| {
                    self.shard.processes[self.ctx.pid.index()]
                        .page_table
                        .get(vpn)
                });
            if let Some(f) = frame {
                self.shard
                    .frames
                    .read(f, page_off, &mut out[offset..offset + seg_len]);
            }
            offset += seg_len;
        }
        Ok(out)
    }

    /// Writes a little-endian `u64` (convenience for session state).
    pub fn mem_write_u64(&mut self, addr: u64, value: u64) -> SysResult<()> {
        self.mem_write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    pub fn mem_read_u64(&self, addr: u64) -> SysResult<u64> {
        let bytes = self.mem_read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("read 8 bytes")))
    }

    /// `ep_clean`: reverts every page overlapping `[addr, addr + len)` to
    /// the base process's contents, discarding the event process's private
    /// copies (§6.1). Only valid inside an event process.
    pub fn ep_clean(&mut self, addr: u64, len: usize) -> SysResult<()> {
        let Some(eid) = self.ctx.ep else {
            return Err(SysError::NotEventProcess);
        };
        if len == 0 {
            return Err(SysError::InvalidArgument);
        }
        let start_vpn = addr / PAGE_SIZE as u64;
        let end = addr
            .checked_add(len as u64)
            .ok_or(SysError::InvalidArgument)?;
        let end_vpn = end.div_ceil(PAGE_SIZE as u64);
        for frame in self.shard.eps[eid.index()]
            .delta
            .drain_range(start_vpn, end_vpn)
        {
            self.shard.frames.release(frame);
        }
        Ok(())
    }

    /// `ep_exit`: frees all of this event process's resources — private
    /// pages, receive rights, kernel state (§6.1). Takes effect when the
    /// handler returns.
    pub fn ep_exit(&mut self) -> SysResult<()> {
        let Some(eid) = self.ctx.ep else {
            return Err(SysError::NotEventProcess);
        };
        self.shard.eps[eid.index()].alive = false;
        Ok(())
    }

    /// Number of private pages this event process currently holds (the
    /// per-session quantity of Figure 6; reading your own page count is not
    /// a cross-compartment channel).
    pub fn ep_private_pages(&self) -> usize {
        match self.ctx.ep {
            Some(eid) => self.shard.eps[eid.index()].delta.len(),
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Processes.
    // ------------------------------------------------------------------

    /// Spawns a child process running `service`. The child inherits the
    /// caller's labels (fork-style privilege distribution, §5.3) and
    /// process environment. Forbidden inside event processes — §8 points at
    /// fork as the thing to restrict, and EPs have no fork in the paper.
    pub fn spawn(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> SysResult<ProcessId> {
        if self.ctx.ep.is_some() {
            return Err(SysError::EventProcessForbidden);
        }
        Ok(self.shard.spawn_body(
            self.router,
            name,
            category,
            Body::Plain(service),
            Some(self.ctx.pid),
        ))
    }

    /// Spawns an event-process-mode child (§6).
    pub fn spawn_ep_service(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> SysResult<ProcessId> {
        if self.ctx.ep.is_some() {
            return Err(SysError::EventProcessForbidden);
        }
        Ok(self.shard.spawn_body(
            self.router,
            name,
            category,
            Body::Event(service),
            Some(self.ctx.pid),
        ))
    }

    /// Terminates the whole process (the process-wide `exit` an event
    /// process may also call, §6.1). Effective when the handler returns.
    pub fn exit_process(&mut self) {
        self.shard.processes[self.ctx.pid.index()].alive = false;
    }

    /// Charges `cycles` of simulated user-space computation to the
    /// process's accounting category (how services model their own work for
    /// Figures 7–9).
    pub fn charge(&mut self, cycles: u64) {
        let category = self.shard.processes[self.ctx.pid.index()].category;
        self.shard.clock.charge(category, cycles);
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn with_send_label(&mut self, f: impl FnOnce(&mut Label)) {
        // `make_mut` takes a private copy only when the storage is shared
        // (with an event process, a queued message, or a cache entry).
        match self.ctx.ep {
            Some(eid) => f(std::sync::Arc::make_mut(
                &mut self.shard.eps[eid.index()].send_label,
            )),
            None => f(std::sync::Arc::make_mut(
                &mut self.shard.processes[self.ctx.pid.index()].send_label,
            )),
        }
    }

    fn with_recv_label(&mut self, f: impl FnOnce(&mut Label)) {
        match self.ctx.ep {
            Some(eid) => f(std::sync::Arc::make_mut(
                &mut self.shard.eps[eid.index()].recv_label,
            )),
            None => f(std::sync::Arc::make_mut(
                &mut self.shard.processes[self.ctx.pid.index()].recv_label,
            )),
        }
    }

    fn check_port_owner(&self, port: Handle) -> SysResult<()> {
        let state = self
            .shard
            .handles
            .port(port)
            .ok_or(SysError::NotPortOwner)?;
        let me = match self.ctx.ep {
            Some(eid) => PortOwner::Ep(eid),
            None => PortOwner::Process(self.ctx.pid),
        };
        if state.owner == Some(me) {
            Ok(())
        } else {
            Err(SysError::NotPortOwner)
        }
    }

    fn require_port_owner(&mut self, port: Handle) -> SysResult<()> {
        self.check_port_owner(port)
    }
}
