//! Process and event-process identifiers.

use std::fmt;

/// Identifies a process within a [`crate::Kernel`].
///
/// Process ids are simulator-internal bookkeeping (array indices); they are
/// never visible to simulated programs, which name each other only through
/// ports (§4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The index of this process in kernel tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Identifies an event process within a [`crate::Kernel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EpId(pub(crate) u32);

impl EpId {
    /// The index of this event process in kernel tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// An execution context: a process, possibly narrowed to one of its event
/// processes. Labels and receive rights resolve against the event process
/// when one is active (§6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecCtx {
    /// The process being executed.
    pub pid: ProcessId,
    /// The active event process, if the process has entered the event realm.
    pub ep: Option<EpId>,
}

impl fmt::Display for ExecCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ep {
            Some(ep) => write!(f, "{}/{}", self.pid, ep),
            None => write!(f, "{}", self.pid),
        }
    }
}
