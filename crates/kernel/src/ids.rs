//! Process and event-process identifiers.
//!
//! Since the kernel was sharded, both id types pack the owning shard into
//! their high bits: an id is meaningful across the whole kernel, but the
//! state it names lives in exactly one [`crate::shard::KernelShard`]'s
//! tables. On a single-shard kernel (the paper-figure configuration) the
//! shard bits are zero and the raw values are identical to the
//! pre-sharding engine's.

use std::fmt;

/// Bits reserved for the shard number in packed ids.
const SHARD_BITS: u32 = 8;
/// Bits left for the per-shard table index: ids are 64-bit, so sharding
/// costs no meaningful index space (2^56 processes or event processes
/// per shard — a `Vec` would exhaust memory first).
const INDEX_BITS: u32 = 64 - SHARD_BITS;
/// Mask selecting the table index.
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

/// Maximum number of kernel shards (the shard must fit in [`SHARD_BITS`]).
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

#[inline]
fn pack(shard: u16, index: usize) -> u64 {
    assert!((shard as usize) < MAX_SHARDS, "shard out of range");
    assert!(index as u64 <= INDEX_MASK, "per-shard id space exhausted");
    ((shard as u64) << INDEX_BITS) | index as u64
}

/// Identifies a process within a [`crate::Kernel`].
///
/// Process ids are simulator-internal bookkeeping (a shard number plus an
/// index into that shard's tables); they are never visible to simulated
/// programs, which name each other only through ports (§4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub(crate) u64);

impl ProcessId {
    /// Packs a shard number and a table index into an id.
    pub(crate) fn new(shard: u16, index: usize) -> ProcessId {
        ProcessId(pack(shard, index))
    }

    /// The index of this process in its shard's tables.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & INDEX_MASK) as usize
    }

    /// The shard this process lives on.
    #[inline]
    pub fn shard(self) -> usize {
        (self.0 >> INDEX_BITS) as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shard() == 0 {
            write!(f, "pid{}", self.index())
        } else {
            write!(f, "pid{}:{}", self.shard(), self.index())
        }
    }
}

/// Identifies an event process within a [`crate::Kernel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EpId(pub(crate) u64);

impl EpId {
    /// Packs a shard number and a table index into an id.
    pub(crate) fn new(shard: u16, index: usize) -> EpId {
        EpId(pack(shard, index))
    }

    /// The index of this event process in its shard's tables.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & INDEX_MASK) as usize
    }

    /// The shard this event process lives on.
    #[inline]
    pub fn shard(self) -> usize {
        (self.0 >> INDEX_BITS) as usize
    }
}

impl fmt::Display for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shard() == 0 {
            write!(f, "ep{}", self.index())
        } else {
            write!(f, "ep{}:{}", self.shard(), self.index())
        }
    }
}

/// An execution context: a process, possibly narrowed to one of its event
/// processes. Labels and receive rights resolve against the event process
/// when one is active (§6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecCtx {
    /// The process being executed.
    pub pid: ProcessId,
    /// The active event process, if the process has entered the event realm.
    pub ep: Option<EpId>,
}

impl fmt::Display for ExecCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ep {
            Some(ep) => write!(f, "{}/{}", self.pid, ep),
            None => write!(f, "{}", self.pid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_zero_ids_match_pre_sharding_values() {
        // The paper-figure configuration (one shard) must produce the same
        // raw id values as the pre-sharding engine: a bare index.
        assert_eq!(ProcessId::new(0, 7).0, 7);
        assert_eq!(EpId::new(0, 123).0, 123);
    }

    #[test]
    fn pack_roundtrip() {
        let pid = ProcessId::new(3, 41);
        assert_eq!(pid.shard(), 3);
        assert_eq!(pid.index(), 41);
        let eid = EpId::new(255, 9);
        assert_eq!(eid.shard(), 255);
        assert_eq!(eid.index(), 9);
    }

    #[test]
    fn display_hides_shard_zero() {
        assert_eq!(ProcessId::new(0, 2).to_string(), "pid2");
        assert_eq!(ProcessId::new(1, 2).to_string(), "pid1:2");
        assert_eq!(EpId::new(0, 5).to_string(), "ep5");
        assert_eq!(EpId::new(2, 5).to_string(), "ep2:5");
    }
}
