//! Property tests for the federation wire codec: adversarial bytes never
//! panic, and round-trips are bit-exact for every `WireMsg` shape —
//! including labels at the handle-space edge and uniform labels with no
//! explicit entries.

use asbestos_cluster::{decode_frame, encode_frame, WireMsg};
use asbestos_kernel::{Payload, Value};
use asbestos_labels::{Handle, Label, Level, HANDLE_SPACE};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = Level> {
    (0u64..5).prop_map(|b| Level::from_bits(b).unwrap())
}

fn arb_handle() -> impl Strategy<Value = Handle> {
    prop_oneof![
        (0u64..1024).prop_map(Handle::from_raw),
        // The top of the 61-bit space: the packing's edge.
        (HANDLE_SPACE - 8..HANDLE_SPACE).prop_map(Handle::from_raw),
    ]
}

fn arb_label() -> impl Strategy<Value = Label> {
    (
        arb_level(),
        prop::collection::vec((arb_handle(), arb_level()), 0..8),
    )
        .prop_map(|(default, pairs)| Label::from_pairs(default, &pairs))
}

fn arb_leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        prop::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| Value::Bytes(Payload::copy_from_slice(&b))),
        "[a-z0-9 _é☃'%-]{0,16}".prop_map(Value::Str),
        arb_handle().prop_map(Value::Handle),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_leaf_value(),
        prop::collection::vec(arb_leaf_value(), 0..5).prop_map(Value::List),
    ]
}

fn arb_msg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (any::<u16>(), any::<u16>())
            .prop_map(|(kernel, kernels)| WireMsg::Hello { kernel, kernels }),
        arb_handle().prop_map(|port| WireMsg::Register { port }),
        arb_handle().prop_map(|port| WireMsg::Unregister { port }),
        arb_handle().prop_map(|port| WireMsg::Resolve { port }),
        (arb_handle(), any::<bool>(), any::<u16>()).prop_map(|(port, some, k)| {
            WireMsg::ResolveR {
                port,
                kernel: some.then_some(k),
            }
        }),
        ("[a-z0-9._-]{0,24}", arb_value()).prop_map(|(key, value)| WireMsg::EnvSet { key, value }),
        (
            arb_handle(),
            arb_label(),
            arb_label(),
            arb_label(),
            arb_label(),
            arb_value(),
        )
            .prop_map(|(port, es, ds, dr, v, body)| WireMsg::Forward {
                port,
                es,
                ds,
                dr,
                v,
                body,
            }),
        Just(WireMsg::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every message round-trips bit-exact, consuming the whole frame —
    /// and re-encoding the decoded message reproduces the same bytes
    /// (the codec is canonical).
    #[test]
    fn roundtrip_identity(msg in arb_msg()) {
        let mut bytes = Vec::new();
        encode_frame(&msg, &mut bytes);
        let (got, used) = decode_frame(&bytes).expect("fresh frame decodes").expect("complete");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(&got, &msg);
        let mut again = Vec::new();
        encode_frame(&got, &mut again);
        prop_assert_eq!(again, bytes);
    }

    /// Every truncation of a valid frame is `Ok(None)` (need more bytes)
    /// or a clean error — never a panic, never a phantom message.
    #[test]
    fn truncations_never_panic(msg in arb_msg(), permille in 0u32..1000) {
        let mut bytes = Vec::new();
        encode_frame(&msg, &mut bytes);
        let cut = bytes.len() * permille as usize / 1000;
        if let Ok(Some(_)) = decode_frame(&bytes[..cut]) {
            // Only the complete frame may decode.
            prop_assert_eq!(cut, bytes.len());
        }
    }

    /// Arbitrary bit flips never panic: the CRC catches body damage, the
    /// header checks catch the rest, and nothing hangs or asserts.
    #[test]
    fn bit_flips_never_panic(
        msg in arb_msg(),
        flips in prop::collection::vec((any::<usize>(), any::<u8>()), 1..6),
    ) {
        let mut bytes = Vec::new();
        encode_frame(&msg, &mut bytes);
        let len = bytes.len();
        for (idx, mask) in flips {
            bytes[idx % len] ^= mask | 1; // nonzero mask: a real flip
        }
        let _ = decode_frame(&bytes); // must not panic or hang
    }

    /// Fully random byte soup never panics either.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }
}

/// Pinned edges the generators cover randomly: the maximum handle, a
/// uniform label with no explicit entries, and an all-⋆ label — the
/// shapes whose packing is most easily broken by an off-by-one.
#[test]
fn pinned_edges_round_trip() {
    let max = Handle::from_raw(HANDLE_SPACE - 1);
    let msgs = [
        WireMsg::Register { port: max },
        WireMsg::Forward {
            port: max,
            es: Label::from_pairs(Level::Star, &[(max, Level::L3)]),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::from_pairs(Level::L3, &[]),
            body: Value::Handle(max),
        },
        WireMsg::Forward {
            port: Handle::from_raw(0),
            es: Label::bottom(), // uniform {⋆}: zero explicit entries
            ds: Label::bottom(),
            dr: Label::bottom(),
            v: Label::bottom(),
            body: Value::Unit,
        },
    ];
    for msg in &msgs {
        let mut bytes = Vec::new();
        encode_frame(msg, &mut bytes);
        let (got, used) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(&got, msg);
    }
}
