//! OKWS across the federation: the §7 web server with its front end on
//! kernel 0 and worker processes on other kernels, plus the golden pin —
//! a two-kernel deployment's Figure 4 verdict trace must be bit-identical
//! to the single-kernel run of the same workload.

use asbestos_cluster::{deploy_okws, Cluster};
use asbestos_kernel::Stats;
use asbestos_okws::logic::EchoStore;
use asbestos_okws::{OkwsClient, OkwsConfig, ServiceSpec};

fn store_config(users: &[(&str, &str)]) -> OkwsConfig {
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    for (u, p) in users {
        config.users.push((u.to_string(), p.to_string()));
    }
    config
}

/// One federated request: issue on kernel 0, run the cluster (not just
/// the kernel — the worker lives elsewhere), then poll the driver.
fn fed_request(
    cluster: &mut Cluster,
    client: &mut OkwsClient,
    service: &str,
    user: &str,
    password: &str,
    extra: &[(&str, &str)],
) -> Option<(u16, Vec<u8>)> {
    let idx = client.request(&mut cluster.nodes[0].kernel, service, user, password, extra);
    cluster.run();
    client.driver.poll(&cluster.nodes[0].kernel);
    client.parse_response(idx)
}

#[test]
fn federated_okws_serves_the_figure5_flow() {
    let mut cluster = Cluster::new(301, 2, 1);
    let okws = deploy_okws(&mut cluster, store_config(&[("alice", "pw-a")]));
    let mut client = OkwsClient::new(&okws);

    // The worker really lives on kernel 1; the front end on kernel 0.
    assert!(cluster.nodes[1]
        .kernel
        .find_process("worker-store")
        .is_some());
    assert!(cluster.nodes[0]
        .kernel
        .find_process("worker-store")
        .is_none());
    assert!(cluster.nodes[0].kernel.find_process("ok-demux").is_some());

    // First request: authenticates, forks W[alice] on kernel 1, stores.
    let (status, body) = fed_request(
        &mut cluster,
        &mut client,
        "store",
        "alice",
        "pw-a",
        &[("data", "first-secret")],
    )
    .expect("response crosses the wire");
    assert_eq!(status, 200);
    assert!(body.is_empty(), "no previous data");

    // Second request: the cached session returns the stored state (§7.3).
    let (status, body) = fed_request(&mut cluster, &mut client, "store", "alice", "pw-a", &[])
        .expect("response crosses the wire");
    assert_eq!(status, 200);
    assert!(body.starts_with(b"first-secret"));
    assert_eq!(body.len(), 1024, "§9.1's ~1K response");

    // The session state lives in an event process on the worker kernel.
    let worker = cluster.nodes[1]
        .kernel
        .find_process("worker-store")
        .unwrap();
    assert_eq!(cluster.nodes[1].kernel.live_eps(worker).len(), 1);

    // Request and response traffic genuinely crossed the switch.
    assert!(cluster.switch().forwarded >= 4);
    let wire = cluster.wire_stats();
    assert!(wire.frames_out > 0 && wire.bytes_out > 0);
}

#[test]
fn federated_authentication_still_gates() {
    let mut cluster = Cluster::new(302, 2, 1);
    let okws = deploy_okws(&mut cluster, store_config(&[("alice", "pw-a")]));
    let mut client = OkwsClient::new(&okws);

    let (status, _) = fed_request(&mut cluster, &mut client, "store", "alice", "wrong", &[])
        .expect("error response still arrives");
    assert_eq!(status, 403);
    let (status, _) = fed_request(&mut cluster, &mut client, "nosuch", "alice", "pw-a", &[])
        .expect("unknown service responds");
    assert_eq!(status, 404);
}

/// The verdict-relevant counters after each request, merged across the
/// whole deployment: one entry per request, cumulative.
fn verdict_entry(stats: &Stats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        stats.sent,
        stats.delivered,
        stats.dropped_label_check,
        stats.dropped_port_decont,
        stats.dropped_no_port,
        stats.dropped_no_owner,
        stats.eps_created,
    )
}

/// Runs the golden workload against a cluster of `kernels` kernels and
/// returns the full observable trace: per request, the HTTP status, the
/// body, and the cumulative merged Figure 4 verdict counters.
#[allow(clippy::type_complexity)]
fn golden_trace(kernels: usize) -> Vec<(u16, Vec<u8>, (u64, u64, u64, u64, u64, u64, u64))> {
    let mut cluster = Cluster::new(303, kernels, 1);
    let okws = deploy_okws(
        &mut cluster,
        store_config(&[("alice", "pw-a"), ("bob", "pw-b")]),
    );
    let mut client = OkwsClient::new(&okws);
    let workload: &[(&str, &str, &str, &[(&str, &str)])] = &[
        ("store", "alice", "pw-a", &[("data", "alice-secret")]),
        ("store", "bob", "pw-b", &[("data", "bob-secret")]),
        ("store", "alice", "pw-a", &[]),
        ("store", "bob", "pw-b", &[]),
        ("store", "alice", "wrong", &[]),
        ("store", "mallory", "pw-a", &[]),
        ("nosuch", "alice", "pw-a", &[]),
        ("store", "alice", "pw-a", &[("logout", "1")]),
        ("store", "alice", "pw-a", &[]),
    ];
    let mut trace = Vec::new();
    for (service, user, pw, extra) in workload {
        let (status, body) = fed_request(&mut cluster, &mut client, service, user, pw, extra)
            .expect("every request gets a response");
        trace.push((status, body, verdict_entry(&cluster.stats())));
    }
    trace
}

/// The golden pin: federation changes *placement*, never *semantics*.
/// Every status, every body byte, and every cumulative verdict counter
/// of the two-kernel deployment matches the single-kernel run exactly —
/// remote sends are counted once, on the kernel that rules on them.
#[test]
fn two_kernel_verdict_trace_is_bit_identical_to_single_kernel() {
    let single = golden_trace(1);
    let double = golden_trace(2);
    assert_eq!(single.len(), double.len());
    for (i, (s, d)) in single.iter().zip(double.iter()).enumerate() {
        assert_eq!(s.0, d.0, "request {i}: status diverged");
        assert_eq!(s.1, d.1, "request {i}: body diverged");
        assert_eq!(s.2, d.2, "request {i}: verdict counters diverged");
    }
    // And the workload is non-trivial: successes, auth failures, and at
    // least one label-check drop are all represented.
    assert!(single.iter().any(|(s, ..)| *s == 200));
    assert!(single.iter().any(|(s, ..)| *s == 403));
    assert!(single.iter().any(|(s, ..)| *s == 404));
}
