//! End-to-end federation semantics: messages and labels across the wire,
//! with the Figure 4 verdict always derived on the destination kernel.

use asbestos_cluster::Cluster;
use asbestos_kernel::{Category, Kernel, Label, Level, Message, Service, Sys, Value};

/// Publishes `echo.port` and answers every `Handle` body with "pong".
struct Echo;

impl Service for Echo {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let port = sys.new_port(Label::top());
        // Open the port: new_port applies p_R(p) ← 0 (§4 bootstrap).
        sys.set_port_label(port, Label::top()).unwrap();
        sys.publish_env("echo.port", Value::Handle(port));
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        if let Some(reply) = msg.body.as_handle() {
            let _ = sys.send(reply, Value::Str("pong".into()));
        }
    }
}

/// Sends its reply port to `echo.port` and publishes whatever comes back.
struct Pinger;

impl Service for Pinger {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let target = sys
            .env("echo.port")
            .and_then(|v| v.as_handle())
            .expect("echo.port replicated before the pinger boots");
        let reply = sys.new_port(Label::top());
        sys.set_port_label(reply, Label::top()).unwrap();
        let _ = sys.send(target, Value::Handle(reply));
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        sys.publish_env("ping.result", msg.body.clone());
    }
}

/// Self-contaminates with a fresh taint handle at 3, then sends to
/// `echo.port` — a send the receiver's default `{2}` label must refuse.
struct TaintedSender;

impl Service for TaintedSender {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let taint = sys.new_handle();
        sys.self_contaminate(&Label::from_pairs(Level::L1, &[(taint, Level::L3)]));
        let target = sys
            .env("echo.port")
            .and_then(|v| v.as_handle())
            .expect("echo.port replicated");
        let _ = sys.send(target, Value::Str("secret".into()));
    }

    fn on_message(&mut self, _sys: &mut Sys<'_>, _msg: &Message) {}
}

fn two_kernel_cluster_with_echo() -> Cluster {
    let mut cluster = Cluster::new(42, 2, 1);
    cluster.nodes[1]
        .kernel
        .spawn("echo", Category::Other, Box::new(Echo));
    cluster.run();
    cluster
}

#[test]
fn request_and_reply_cross_the_wire() {
    let mut cluster = two_kernel_cluster_with_echo();
    // The env binding — and the port handle inside it — replicated.
    assert!(cluster.nodes[0]
        .kernel
        .global_env("echo.port")
        .and_then(|v| v.as_handle())
        .is_some());

    cluster.nodes[0]
        .kernel
        .spawn("pinger", Category::Other, Box::new(Pinger));
    cluster.run();

    assert_eq!(
        cluster.nodes[0].kernel.global_env("ping.result"),
        Some(Value::Str("pong".into()))
    );
    // Two Forwards crossed: the ping (0→1) and the pong (1→0).
    assert_eq!(cluster.switch().forwarded, 2);
    assert_eq!(cluster.nodes[0].gateway.forwarded_out, 1);
    assert_eq!(cluster.nodes[0].gateway.forwarded_in, 1);
    assert_eq!(cluster.nodes[1].gateway.forwarded_out, 1);
    assert_eq!(cluster.nodes[1].gateway.forwarded_in, 1);
    // Each kernel delivered exactly the message addressed to it.
    assert_eq!(cluster.nodes[0].kernel.stats().delivered, 1);
    assert_eq!(cluster.nodes[1].kernel.stats().delivered, 1);
}

#[test]
fn figure4_verdict_derives_from_destination_kernel_state() {
    let mut cluster = two_kernel_cluster_with_echo();
    cluster.nodes[0]
        .kernel
        .spawn("tainted", Category::Other, Box::new(TaintedSender));
    cluster.run();

    // The contaminated send crossed the wire and was *dropped on the
    // destination kernel*: echo's default receive label {2} refuses the
    // taint-at-3 the serialized E_S carries. The source kernel records
    // nothing — §4's silent drop, across machines.
    let k0 = cluster.nodes[0].kernel.stats();
    let k1 = cluster.nodes[1].kernel.stats();
    assert_eq!(k1.dropped_label_check, 1);
    assert_eq!(k0.dropped_label_check, 0);
    assert_eq!(k1.delivered, 0);
    // The message was accepted into kernel 1's queues (counted there,
    // not at the source), then refused at delivery time.
    assert_eq!(k1.sent, 1);
    assert_eq!(k0.sent, 0);
    assert_eq!(cluster.switch().forwarded, 1);
}

/// The same workload on one kernel and on a two-kernel federation yields
/// the same merged message accounting: federation changes placement, not
/// semantics.
#[test]
fn merged_stats_match_a_single_kernel_run() {
    // Single kernel: echo, pinger, and the tainted sender side by side.
    let mut single = Kernel::new(42);
    single.spawn("echo", Category::Other, Box::new(Echo));
    single.run();
    single.spawn("pinger", Category::Other, Box::new(Pinger));
    single.run();
    single.spawn("tainted", Category::Other, Box::new(TaintedSender));
    single.run();
    let want = single.stats();

    // Federated: echo on kernel 1, senders on kernel 0.
    let mut cluster = two_kernel_cluster_with_echo();
    cluster.nodes[0]
        .kernel
        .spawn("pinger", Category::Other, Box::new(Pinger));
    cluster.run();
    cluster.nodes[0]
        .kernel
        .spawn("tainted", Category::Other, Box::new(TaintedSender));
    cluster.run();
    let got = cluster.stats();

    assert_eq!(got.sent, want.sent);
    assert_eq!(got.delivered, want.delivered);
    assert_eq!(got.dropped_label_check, want.dropped_label_check);
    assert_eq!(got.dropped_total(), want.dropped_total());
}

#[test]
fn environment_replicates_without_echo_storms() {
    let mut cluster = Cluster::new(7, 3, 1);
    cluster.run();
    cluster.nodes[2]
        .kernel
        .set_global_env("cluster.motd", Value::Str("hello".into()));
    cluster.run();
    for node in &cluster.nodes {
        assert_eq!(
            node.kernel.global_env("cluster.motd"),
            Some(Value::Str("hello".into()))
        );
    }
    // Quiescent means quiescent: a settled cluster exchanges nothing.
    let before = cluster.wire_stats();
    cluster.run();
    let after = cluster.wire_stats();
    assert_eq!(before.frames_out, after.frames_out);
    assert_eq!(before.bytes_in, after.bytes_in);
}

/// §5.1 across the cluster: kernels mint handles from disjoint cipher
/// lanes, so no two kernels can ever produce the same handle value —
/// which is what makes a serialized handle unambiguous on arrival.
#[test]
fn handles_are_unique_cluster_wide() {
    struct Minter;
    impl Service for Minter {
        fn on_start(&mut self, sys: &mut Sys<'_>) {
            let minted: Vec<Value> = (0..64)
                .map(|_| Value::U64(sys.new_handle().raw()))
                .collect();
            sys.publish_env("minted", Value::List(minted));
        }

        fn on_message(&mut self, _sys: &mut Sys<'_>, _msg: &Message) {}
    }

    let mut cluster = Cluster::new(99, 4, 2);
    let mut seen = std::collections::HashSet::new();
    for node in &mut cluster.nodes {
        node.kernel
            .spawn("minter", Category::Other, Box::new(Minter));
        let Some(Value::List(minted)) = node.kernel.global_env("minted") else {
            panic!("minter published");
        };
        for v in minted {
            assert!(seen.insert(v.as_u64().unwrap()), "handle collision");
        }
    }
    assert_eq!(seen.len(), 4 * 64);
}
