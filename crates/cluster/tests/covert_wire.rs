//! Covert-channel regression across the wire: the backpressure verdicts a
//! victim observes on its own kernel must be byte-identical whether or
//! not an attacker on *another* kernel floods the same sink through the
//! gateway. Remote ingest may fill shared queues — never a sender's
//! credit state.

use std::sync::{Arc, Mutex};

use asbestos_cluster::Cluster;
use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Label, Value};

/// One paced two-kernel run. The sink and the victim live on kernel 1
/// (backpressure armed, tight port bound); the attacker lives on kernel 0
/// and — when asked — floods the sink at 10× the victim's rate, relayed
/// through the switch. The victim records every syscall-visible
/// observable: the send verdict and its remaining credit.
fn federated_credit_trace(attacker_floods: bool) -> Vec<String> {
    let mut cluster = Cluster::new(86, 2, 1);
    cluster.nodes[1].kernel.set_backpressure(true);
    cluster.nodes[1].kernel.set_port_queue_limit(8);

    cluster.nodes[1].kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            |_, _| {},
        ),
    );
    let sink = cluster.nodes[1]
        .kernel
        .global_env("sink.port")
        .unwrap()
        .as_handle()
        .unwrap();

    let trace = Arc::new(Mutex::new(Vec::<String>::new()));
    let t2 = trace.clone();
    cluster.nodes[1].kernel.spawn(
        "victim",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("victim.tick", Value::Handle(p));
            },
            move |sys, _msg| {
                // 20 sends against a default window of 16: the tail
                // defers and the AIMD loop reacts — a non-trivial trace,
                // every byte derived from the victim's own history.
                for _ in 0..20 {
                    let verdict = sys.send(sink, Value::U64(1));
                    let credit = sys.send_credit(sink);
                    t2.lock().unwrap().push(format!("{verdict:?}/{credit}"));
                }
            },
        ),
    );
    let victim_tick = cluster.nodes[1]
        .kernel
        .global_env("victim.tick")
        .unwrap()
        .as_handle()
        .unwrap();

    // Replicate the sink's port binding to kernel 0 before the attacker
    // boots, so its floods resolve through the port directory.
    cluster.run();

    cluster.nodes[0].kernel.spawn(
        "attacker",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("attacker.tick", Value::Handle(p));
            },
            move |sys, _msg| {
                if attacker_floods {
                    for _ in 0..200 {
                        let _ = sys.send(sink, Value::U64(666));
                    }
                }
            },
        ),
    );
    let attacker_tick = cluster.nodes[0]
        .kernel
        .global_env("attacker.tick")
        .unwrap()
        .as_handle()
        .unwrap();

    for _ in 0..5 {
        cluster.nodes[0].kernel.inject(attacker_tick, Value::Unit);
        cluster.nodes[1].kernel.inject(victim_tick, Value::Unit);
        cluster.run();
    }
    if attacker_floods {
        // The flood is real: it crossed the wire and visibly stressed the
        // destination kernel's queues.
        assert!(
            cluster.nodes[1].gateway.forwarded_in >= 1000,
            "flood never crossed the wire"
        );
        let k1 = cluster.nodes[1].kernel.stats();
        assert!(
            k1.sent_deferred + k1.dropped_port_queue_full + k1.dropped_shed > 0,
            "flood never pressured the sink"
        );
    }
    let out = trace.lock().unwrap().clone();
    out
}

#[test]
fn victim_trace_is_blind_to_a_cross_kernel_flood() {
    // PR 8's isolation rule, stretched across the wire: a send verdict is
    // a pure function of the sender's own history on its own kernel.
    // Remote ingest lands in shared queue state (and god-mode pressure
    // counters) only — so an attacker flooding from another kernel must
    // not modulate one bit of the victim's observable trace.
    let quiet = federated_credit_trace(false);
    let flooded = federated_credit_trace(true);
    assert!(!quiet.is_empty());
    // Non-trivial: the victim's own overrun produces both verdicts and a
    // moving credit counter.
    assert!(quiet.iter().any(|e| e.contains("Delivered")));
    assert!(quiet.iter().any(|e| e.contains("Deferred")));
    assert_eq!(
        quiet, flooded,
        "a cross-kernel flood modulated the victim's view"
    );
}
