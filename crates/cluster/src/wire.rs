//! The federation wire format: labels and payloads in serialized form.
//!
//! Every cross-kernel exchange is one [`WireMsg`] inside one *frame*:
//!
//! ```text
//! magic "ASWM" (4) | version u8 | body-len u32 LE | crc32 u32 LE | body
//! ```
//!
//! The CRC (the store crate's snapshot polynomial) covers exactly the
//! body, so a flipped bit anywhere in a frame is detected before any
//! field is interpreted, and the version byte sits *outside* the body so
//! a future v2 can change the body layout freely — same discipline as
//! the snapshot codec's header.
//!
//! Labels travel as their §5.6 packed form: the default level's bits,
//! then each explicit `(handle, level)` entry as `handle << 3 | bits` —
//! the same u64 packing the in-memory chunks use, so serialization is a
//! plain iteration and deserialization re-validates every entry
//! ([`Level::from_bits`] rejects bit patterns 5–7, [`Handle::new`]
//! rejects values over 61 bits). A label off the wire is therefore
//! *checked*, never trusted.
//!
//! Payload bytes are zero-copy on both sides of the boundary that
//! matters: encoding appends a [`Payload`]'s bytes straight out of its
//! backing store (no intermediate `Payload` materialization), and
//! [`decode_frame`] pins the whole received body in one `Arc<[u8]>` so
//! every `Value::Bytes` in the decoded message is a [`Payload::from_arc`]
//! slice view of it — one copy per frame (socket buffer → body arc), no
//! matter how many payloads the message carries.

use std::sync::Arc;

use asbestos_kernel::{Payload, Value};
use asbestos_labels::{Handle, Label, Level};
use asbestos_store::crc32;

/// Frame magic: "ASbestos Wire Message".
pub const MAGIC: [u8; 4] = *b"ASWM";

/// Current wire format version.
pub const WIRE_VERSION: u8 = 1;

/// Frame header size: magic + version + body length + CRC.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Upper bound on a frame body. Far above anything the kernel can emit
/// (message payloads are bounded by queue limits long before this), it
/// exists so garbage that happens to spell a huge length cannot make a
/// connection buffer gigabytes waiting for bytes that never come.
pub const MAX_BODY_LEN: usize = 1 << 26;

/// Recursion bound for `Value::List` nesting on decode.
const MAX_VALUE_DEPTH: u32 = 64;

/// Everything that can be wrong with bytes claiming to be a frame.
///
/// `decode_frame` distinguishes "not enough bytes yet" (`Ok(None)` — a
/// streaming read mid-frame) from these, which are all *corruption*: the
/// bytes can never become a valid frame no matter what arrives next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The first four bytes are not `ASWM`.
    BadMagic,
    /// The version byte is not one this decoder speaks.
    BadVersion(u8),
    /// The declared body length exceeds [`MAX_BODY_LEN`].
    FrameTooLong(usize),
    /// The body checksum does not match.
    BadCrc,
    /// An unknown message tag.
    BadTag(u8),
    /// An unknown `Value` variant tag.
    BadValueTag(u8),
    /// A CRC-valid body ended before its fields did.
    Truncated,
    /// A CRC-valid body has bytes left over after its message.
    TrailingBytes,
    /// A string field is not UTF-8.
    BadText,
    /// A packed label entry encodes a handle over 61 bits.
    BadHandle,
    /// A packed label entry encodes level bits 5–7.
    BadLevel,
    /// `Value::List` nesting deeper than the decoder's recursion bound.
    TooDeep,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::FrameTooLong(n) => write!(f, "frame body of {n} bytes exceeds limit"),
            WireError::BadCrc => write!(f, "frame body failed CRC"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadValueTag(t) => write!(f, "unknown value tag {t}"),
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::TrailingBytes => write!(f, "frame body has trailing bytes"),
            WireError::BadText => write!(f, "string field is not UTF-8"),
            WireError::BadHandle => write!(f, "handle exceeds 61 bits"),
            WireError::BadLevel => write!(f, "invalid level bits"),
            WireError::TooDeep => write!(f, "value nesting too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// A federation message.
///
/// `Hello`/`Bye` bracket a connection; `Register`/`Unregister`/`Resolve`/
/// `ResolveR` are the port directory protocol (the switch answers
/// `Resolve` and pushes `ResolveR` on every `Register`, so gateways
/// normally never need to ask); `EnvSet` replicates the global
/// environment (§4's bootstrap namespace) across kernels; `Forward`
/// carries one cross-kernel message — the sender's effective send label
/// `E_S` and the `SEND` arguments, exactly what the destination kernel
/// needs to re-run the Figure 4 check against *its own* state.
#[derive(Clone, PartialEq, Debug)]
pub enum WireMsg {
    /// Connection preamble: "I am kernel `kernel` of `kernels`".
    Hello { kernel: u16, kernels: u16 },
    /// The sending kernel owns this port; route `Forward`s for it here.
    Register { port: Handle },
    /// The port is gone (its owner died or revoked it).
    Unregister { port: Handle },
    /// Where does this port live? (Pull path; push via `ResolveR` is the norm.)
    Resolve { port: Handle },
    /// Directory answer/update: `kernel` owns `port` (`None`: nobody does).
    ResolveR { port: Handle, kernel: Option<u16> },
    /// Replicate one global-environment binding.
    EnvSet { key: String, value: Value },
    /// One cross-kernel message: deliver `body` to `port` under these labels.
    Forward {
        port: Handle,
        /// The sender's effective send label `E_S = P_S ⊔ C_S`, snapshotted
        /// at send time on the source kernel.
        es: Label,
        /// Decontamination argument `D_S` (already privilege-checked at send).
        ds: Label,
        /// Receiver decontamination bound `D_R`.
        dr: Label,
        /// Verification label `V`.
        v: Label,
        body: Value,
    },
    /// Orderly goodbye.
    Bye,
}

const TAG_HELLO: u8 = 0;
const TAG_REGISTER: u8 = 1;
const TAG_UNREGISTER: u8 = 2;
const TAG_RESOLVE: u8 = 3;
const TAG_RESOLVE_R: u8 = 4;
const TAG_ENV_SET: u8 = 5;
const TAG_FORWARD: u8 = 6;
const TAG_BYE: u8 = 7;

const VTAG_UNIT: u8 = 0;
const VTAG_BOOL: u8 = 1;
const VTAG_U64: u8 = 2;
const VTAG_BYTES: u8 = 3;
const VTAG_STR: u8 = 4;
const VTAG_HANDLE: u8 = 5;
const VTAG_LIST: u8 = 6;

// ---------------------------------------------------------------- encode

/// Appends `msg` as one complete frame to `out`.
pub fn encode_frame(msg: &WireMsg, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&[0u8; 8]); // length + CRC, patched below
    let body_at = out.len();
    encode_body(msg, out);
    let body_len = out.len() - body_at;
    debug_assert!(body_len <= MAX_BODY_LEN, "kernel emitted an absurd frame");
    let crc = crc32(&out[body_at..]);
    out[header_at + 5..header_at + 9].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[header_at + 9..header_at + 13].copy_from_slice(&crc.to_le_bytes());
}

fn encode_body(msg: &WireMsg, out: &mut Vec<u8>) {
    match msg {
        WireMsg::Hello { kernel, kernels } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&kernel.to_le_bytes());
            out.extend_from_slice(&kernels.to_le_bytes());
        }
        WireMsg::Register { port } => {
            out.push(TAG_REGISTER);
            out.extend_from_slice(&port.raw().to_le_bytes());
        }
        WireMsg::Unregister { port } => {
            out.push(TAG_UNREGISTER);
            out.extend_from_slice(&port.raw().to_le_bytes());
        }
        WireMsg::Resolve { port } => {
            out.push(TAG_RESOLVE);
            out.extend_from_slice(&port.raw().to_le_bytes());
        }
        WireMsg::ResolveR { port, kernel } => {
            out.push(TAG_RESOLVE_R);
            out.extend_from_slice(&port.raw().to_le_bytes());
            match kernel {
                Some(k) => {
                    out.push(1);
                    out.extend_from_slice(&k.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        WireMsg::EnvSet { key, value } => {
            out.push(TAG_ENV_SET);
            encode_str(key, out);
            encode_value(value, out);
        }
        WireMsg::Forward {
            port,
            es,
            ds,
            dr,
            v,
            body,
        } => {
            out.push(TAG_FORWARD);
            out.extend_from_slice(&port.raw().to_le_bytes());
            encode_label(es, out);
            encode_label(ds, out);
            encode_label(dr, out);
            encode_label(v, out);
            encode_value(body, out);
        }
        WireMsg::Bye => out.push(TAG_BYE),
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// §5.6 packed form: default-level bits, entry count, then each explicit
/// entry as `handle << 3 | level-bits` — identical to the in-memory
/// chunk packing, so the wire is just the label's native shape.
fn encode_label(label: &Label, out: &mut Vec<u8>) {
    out.push(label.default_level().to_bits() as u8);
    out.extend_from_slice(&(label.entry_count() as u32).to_le_bytes());
    for (handle, level) in label.iter() {
        let packed = (handle.raw() << 3) | level.to_bits();
        out.extend_from_slice(&packed.to_le_bytes());
    }
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(VTAG_UNIT),
        Value::Bool(b) => {
            out.push(VTAG_BOOL);
            out.push(*b as u8);
        }
        Value::U64(n) => {
            out.push(VTAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Bytes(p) => {
            out.push(VTAG_BYTES);
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            // Straight out of the payload's backing store — egress never
            // materializes an intermediate Payload.
            out.extend_from_slice(p.as_slice());
        }
        Value::Str(s) => {
            out.push(VTAG_STR);
            encode_str(s, out);
        }
        Value::Handle(h) => {
            out.push(VTAG_HANDLE);
            out.extend_from_slice(&h.raw().to_le_bytes());
        }
        Value::List(items) => {
            out.push(VTAG_LIST);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
    }
}

// ---------------------------------------------------------------- decode

/// Tries to decode one frame from the front of `buf`.
///
/// * `Ok(Some((msg, consumed)))` — a complete frame; the caller should
///   drop the first `consumed` bytes.
/// * `Ok(None)` — `buf` holds a valid prefix of a frame; read more.
/// * `Err(_)` — the bytes are corrupt and the connection should die.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(WireMsg, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            return Err(WireError::BadMagic);
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let body_len = u32::from_le_bytes(buf[5..9].try_into().unwrap()) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::FrameTooLong(body_len));
    }
    let crc_want = u32::from_le_bytes(buf[9..13].try_into().unwrap());
    let total = HEADER_LEN + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[HEADER_LEN..total];
    if crc32(body) != crc_want {
        return Err(WireError::BadCrc);
    }
    // Pin the body once; every Bytes payload below is a slice view of it.
    let arc: Arc<[u8]> = Arc::from(body);
    let mut r = Reader { data: arc, pos: 0 };
    let msg = decode_body(&mut r)?;
    if r.pos != body_len {
        return Err(WireError::TrailingBytes);
    }
    Ok(Some((msg, total)))
}

struct Reader {
    data: Arc<[u8]>,
    pos: usize,
}

impl Reader {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.data.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn handle(&mut self) -> Result<Handle, WireError> {
        Handle::new(self.u64()?).ok_or(WireError::BadHandle)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadText)
    }

    fn label(&mut self) -> Result<Label, WireError> {
        let default = Level::from_bits(self.u8()? as u64).ok_or(WireError::BadLevel)?;
        let count = self.u32()? as usize;
        // Each entry is 8 bytes; reject counts the body cannot hold
        // before allocating for them.
        if self.data.len() - self.pos < count * 8 {
            return Err(WireError::Truncated);
        }
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let packed = self.u64()?;
            let level = Level::from_bits(packed & 0x7).ok_or(WireError::BadLevel)?;
            let handle = Handle::new(packed >> 3).ok_or(WireError::BadHandle)?;
            pairs.push((handle, level));
        }
        Ok(Label::from_pairs(default, &pairs))
    }

    fn value(&mut self, depth: u32) -> Result<Value, WireError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(WireError::TooDeep);
        }
        let tag = self.u8()?;
        Ok(match tag {
            VTAG_UNIT => Value::Unit,
            VTAG_BOOL => Value::Bool(self.u8()? != 0),
            VTAG_U64 => Value::U64(self.u64()?),
            VTAG_BYTES => {
                let len = self.u32()? as usize;
                if self.data.len() - self.pos < len {
                    return Err(WireError::Truncated);
                }
                let at = self.pos;
                self.pos += len;
                // Zero-copy ingest: a slice view of the pinned frame body.
                Value::Bytes(Payload::from_arc(Arc::clone(&self.data)).slice(at..at + len))
            }
            VTAG_STR => Value::Str(self.str()?),
            VTAG_HANDLE => Value::Handle(self.handle()?),
            VTAG_LIST => {
                let count = self.u32()? as usize;
                // Every element takes at least its tag byte.
                if self.data.len() - self.pos < count {
                    return Err(WireError::Truncated);
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Value::List(items)
            }
            t => return Err(WireError::BadValueTag(t)),
        })
    }
}

fn decode_body(r: &mut Reader) -> Result<WireMsg, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_HELLO => WireMsg::Hello {
            kernel: r.u16()?,
            kernels: r.u16()?,
        },
        TAG_REGISTER => WireMsg::Register { port: r.handle()? },
        TAG_UNREGISTER => WireMsg::Unregister { port: r.handle()? },
        TAG_RESOLVE => WireMsg::Resolve { port: r.handle()? },
        TAG_RESOLVE_R => {
            let port = r.handle()?;
            let kernel = match r.u8()? {
                0 => None,
                _ => Some(r.u16()?),
            };
            WireMsg::ResolveR { port, kernel }
        }
        TAG_ENV_SET => WireMsg::EnvSet {
            key: r.str()?,
            value: r.value(0)?,
        },
        TAG_FORWARD => WireMsg::Forward {
            port: r.handle()?,
            es: r.label()?,
            ds: r.label()?,
            dr: r.label()?,
            v: r.label()?,
            body: r.value(0)?,
        },
        TAG_BYE => WireMsg::Bye,
        t => return Err(WireError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_labels::HANDLE_SPACE;

    fn roundtrip(msg: &WireMsg) -> WireMsg {
        let mut buf = Vec::new();
        encode_frame(msg, &mut buf);
        let (got, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        got
    }

    #[test]
    fn every_variant_roundtrips() {
        let label = Label::from_pairs(
            Level::L1,
            &[
                (Handle::from_raw(7), Level::Star),
                (Handle::from_raw(HANDLE_SPACE - 1), Level::L3),
            ],
        );
        let msgs = [
            WireMsg::Hello {
                kernel: 1,
                kernels: 4,
            },
            WireMsg::Register {
                port: Handle::from_raw(0),
            },
            WireMsg::Unregister {
                port: Handle::from_raw(HANDLE_SPACE - 1),
            },
            WireMsg::Resolve {
                port: Handle::from_raw(42),
            },
            WireMsg::ResolveR {
                port: Handle::from_raw(42),
                kernel: Some(3),
            },
            WireMsg::ResolveR {
                port: Handle::from_raw(42),
                kernel: None,
            },
            WireMsg::EnvSet {
                key: "okws.worker.ws.port".into(),
                value: Value::Handle(Handle::from_raw(9)),
            },
            WireMsg::Forward {
                port: Handle::from_raw(5),
                es: label.clone(),
                ds: Label::top(),
                dr: label.clone(),
                v: Label::bottom(),
                body: Value::List(vec![
                    Value::Unit,
                    Value::Bool(true),
                    Value::U64(u64::MAX),
                    Value::Bytes(Payload::copy_from_slice(b"hello")),
                    Value::Str("s".into()),
                    Value::Handle(Handle::from_raw(1)),
                ]),
            },
            WireMsg::Bye,
        ];
        for msg in &msgs {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn streaming_prefixes_ask_for_more() {
        let mut buf = Vec::new();
        encode_frame(
            &WireMsg::EnvSet {
                key: "k".into(),
                value: Value::U64(7),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]).unwrap(), None);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        encode_frame(
            &WireMsg::Register {
                port: Handle::from_raw(3),
            },
            &mut buf,
        );
        // Flip one bit in the body: CRC must catch it.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert_eq!(decode_frame(&bad), Err(WireError::BadCrc));
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad), Err(WireError::BadMagic));
        // Future version.
        let mut bad = buf.clone();
        bad[4] = 2;
        assert_eq!(decode_frame(&bad), Err(WireError::BadVersion(2)));
    }

    #[test]
    fn ingest_payloads_share_the_frame_body() {
        let msg = WireMsg::Forward {
            port: Handle::from_raw(1),
            es: Label::bottom(),
            ds: Label::bottom(),
            dr: Label::bottom(),
            v: Label::bottom(),
            body: Value::List(vec![
                Value::Bytes(Payload::copy_from_slice(b"abc")),
                Value::Bytes(Payload::copy_from_slice(b"defg")),
            ]),
        };
        let mut buf = Vec::new();
        encode_frame(&msg, &mut buf);
        let (got, _) = decode_frame(&buf).unwrap().unwrap();
        let WireMsg::Forward {
            body: Value::List(items),
            ..
        } = got
        else {
            panic!("wrong shape")
        };
        let ids: Vec<_> = items
            .iter()
            .map(|v| v.as_payload().unwrap().backing_id())
            .collect();
        // Both payloads are views of the one pinned frame body.
        assert_eq!(ids[0], ids[1]);
        assert_eq!(items[0].as_bytes().unwrap(), b"abc");
        assert_eq!(items[1].as_bytes().unwrap(), b"defg");
    }
}
