//! A framed, nonblocking connection between a kernel and the switch.
//!
//! [`FrameConn`] wraps a nonblocking `UnixStream` with the length-prefixed
//! CRC framing of [`crate::wire`]: `send` serializes into an outbound
//! buffer, `flush` pushes as much of it as the socket will take, and
//! `pump` drains the socket and returns every complete frame. Partial
//! reads and partial writes are both normal — the cluster's run loop
//! keeps calling until no side makes progress — so nothing here ever
//! blocks and nothing is lost when a buffer fills mid-frame.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;

use crate::wire::{decode_frame, encode_frame, WireMsg};

const READ_CHUNK: usize = 16 * 1024;

/// Traffic counters for one connection (both directions).
#[derive(Clone, Copy, Default, Debug)]
pub struct ConnStats {
    /// Complete frames decoded off the socket.
    pub frames_in: u64,
    /// Frames serialized for sending.
    pub frames_out: u64,
    /// Bytes read off the socket.
    pub bytes_in: u64,
    /// Bytes actually written to the socket.
    pub bytes_out: u64,
}

/// One end of a kernel ↔ switch link.
pub struct FrameConn {
    stream: UnixStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written to the socket.
    flushed: usize,
    /// Peer performed an orderly close (EOF observed).
    closed: bool,
    stats: ConnStats,
}

impl FrameConn {
    /// Wraps a stream, switching it to nonblocking mode.
    pub fn new(stream: UnixStream) -> io::Result<FrameConn> {
        stream.set_nonblocking(true)?;
        Ok(FrameConn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            flushed: 0,
            closed: false,
            stats: ConnStats::default(),
        })
    }

    /// Queues one message for sending (serialize only; see [`flush`]).
    ///
    /// [`flush`]: FrameConn::flush
    pub fn send(&mut self, msg: &WireMsg) {
        encode_frame(msg, &mut self.outbuf);
        self.stats.frames_out += 1;
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns the number of bytes that moved.
    pub fn flush(&mut self) -> io::Result<usize> {
        let mut moved = 0;
        while self.flushed < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.flushed..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.flushed += n;
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.flushed == self.outbuf.len() {
            self.outbuf.clear();
            self.flushed = 0;
        }
        self.stats.bytes_out += moved as u64;
        Ok(moved)
    }

    /// Reads everything available and returns the complete frames.
    ///
    /// Wire corruption (bad magic, CRC failure, malformed body) surfaces
    /// as `InvalidData`: framing errors are not recoverable mid-stream.
    pub fn pump(&mut self) -> io::Result<Vec<WireMsg>> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.stats.bytes_in += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let mut msgs = Vec::new();
        let mut used = 0;
        loop {
            match decode_frame(&self.inbuf[used..]) {
                Ok(Some((msg, n))) => {
                    msgs.push(msg);
                    used += n;
                    self.stats.frames_in += 1;
                }
                Ok(None) => break,
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
        self.inbuf.drain(..used);
        Ok(msgs)
    }

    /// Whether the peer has closed its end.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether buffered output is still waiting for the socket.
    pub fn has_pending_output(&self) -> bool {
        self.flushed < self.outbuf.len()
    }

    /// This connection's traffic counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_labels::Handle;

    #[test]
    fn send_pump_roundtrip_over_a_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tx = FrameConn::new(a).unwrap();
        let mut rx = FrameConn::new(b).unwrap();
        for i in 0..100u64 {
            tx.send(&WireMsg::Register {
                port: Handle::from_raw(i),
            });
        }
        let mut got = Vec::new();
        // Flush and pump until quiescent: socket buffers are finite, so a
        // single flush may not move everything.
        loop {
            let moved = tx.flush().unwrap();
            let msgs = rx.pump().unwrap();
            let n = msgs.len();
            got.extend(msgs);
            if moved == 0 && n == 0 {
                break;
            }
        }
        assert_eq!(got.len(), 100);
        assert_eq!(
            got[99],
            WireMsg::Register {
                port: Handle::from_raw(99)
            }
        );
        assert_eq!(tx.stats().frames_out, 100);
        assert_eq!(rx.stats().frames_in, 100);
        assert_eq!(tx.stats().bytes_out, rx.stats().bytes_in);
    }
}
