//! Cluster assembly: N kernels, N gateways, one switch, one run loop.
//!
//! [`Cluster::new`] builds `kernels` kernel instances, each with its own
//! [`Gateway`] connected to a shared [`Switch`] over a real socket
//! (`UnixStream::pair`, or path-bound sockets under the directory named
//! by `ASBESTOS_CLUSTER_SOCKET`). Handle uniqueness holds *cluster-wide*
//! (§5.1 "unique since boot", here since cluster boot): kernel `k` of
//! `N` takes cipher-lane slot `k`, so shard `i` of kernel `k` draws
//! handles from lane `k·S + i` of `N·S` — no two kernels can ever mint
//! the same handle, which is what makes a serialized handle meaningful
//! on arrival.
//!
//! [`Cluster::run`] is the federation scheduler: it alternates kernel
//! execution with gateway and switch pumping until the whole system —
//! every kernel idle, every socket drained, every buffer flushed — is
//! quiescent. [`deploy_okws`] places OKWS across the cluster: front end
//! (netd, demux, launcher, idd, dbproxy) on kernel 0, worker base
//! processes round-robin across kernels 1..N, activation and request
//! traffic flowing through the gateways.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use asbestos_kernel::{knobs, Category, CostModel, Kernel, Stats};
use asbestos_okws::{Okws, OkwsConfig};

use crate::conn::{ConnStats, FrameConn};
use crate::gateway::Gateway;
use crate::switch::Switch;

/// One kernel plus its federation gateway.
pub struct ClusterNode {
    /// The kernel instance.
    pub kernel: Kernel,
    /// Its connection to the switch.
    pub gateway: Gateway,
}

/// A federation of kernels behind one switch.
pub struct Cluster {
    /// The member kernels, indexed by kernel id.
    pub nodes: Vec<ClusterNode>,
    switch: Switch,
}

impl Cluster {
    /// Builds a cluster of `kernels` kernels with `shards` shards each,
    /// all deriving handles from `seed` in disjoint cipher lanes.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is zero or socket setup fails.
    pub fn new(seed: u64, kernels: usize, shards: usize) -> Cluster {
        assert!(kernels >= 1, "a cluster needs at least one kernel");
        assert!(kernels <= u16::MAX as usize, "kernel ids are u16");
        let mut nodes = Vec::with_capacity(kernels);
        let mut switch_conns = Vec::with_capacity(kernels);
        for k in 0..kernels {
            let (gw_end, sw_end) = socket_pair(k).expect("cluster socket setup");
            let kernel =
                Kernel::with_cluster_slot(seed, CostModel::default(), shards, 0, k, kernels);
            let gateway = Gateway::new(
                k as u16,
                kernels as u16,
                FrameConn::new(gw_end).expect("gateway socket"),
            );
            switch_conns.push(FrameConn::new(sw_end).expect("switch socket"));
            nodes.push(ClusterNode { kernel, gateway });
        }
        Cluster {
            nodes,
            switch: Switch::new(switch_conns),
        }
    }

    /// Number of member kernels.
    pub fn kernels(&self) -> usize {
        self.nodes.len()
    }

    /// The switch (directory + relay counters), read-only.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Runs the federation to quiescence: every kernel drained, every
    /// gateway and switch buffer empty. Returns total progress units
    /// (kernel steps + frames + bytes moved).
    pub fn run(&mut self) -> u64 {
        let mut total = 0u64;
        let mut spins = 0u32;
        loop {
            let mut progress = 0u64;
            for node in &mut self.nodes {
                progress += node.kernel.run();
                progress += node.gateway.pump_out(&mut node.kernel);
                progress += node.gateway.flush().expect("gateway wire") as u64;
            }
            progress += self.switch.pump().expect("switch wire");
            for node in &mut self.nodes {
                progress += node
                    .gateway
                    .pump_in(&mut node.kernel)
                    .expect("gateway wire");
                progress += node.gateway.flush().expect("gateway wire") as u64;
            }
            if progress == 0 {
                return total;
            }
            total += progress;
            spins += 1;
            assert!(spins < 10_000_000, "federation livelock");
        }
    }

    /// One scheduling quantum: every kernel executes at most one
    /// delivery step, then the wire is pumped once. Returns progress
    /// units — zero means the whole federation is quiescent. This is
    /// the paced-run primitive (the load generator advances virtual
    /// time step by step); [`Cluster::run`] is the drain-to-quiescence
    /// loop.
    pub fn step(&mut self) -> u64 {
        let mut progress = 0u64;
        for node in &mut self.nodes {
            progress += u64::from(node.kernel.step());
        }
        progress + self.pump_wire()
    }

    /// One pump round over every gateway and the switch, without
    /// running any kernel: egress drained onto the wire, the switch
    /// relays, inbound frames injected. Returns progress units (frames
    /// handled + bytes flushed).
    pub fn pump_wire(&mut self) -> u64 {
        let mut progress = 0u64;
        for node in &mut self.nodes {
            progress += node.gateway.pump_out(&mut node.kernel);
            progress += node.gateway.flush().expect("gateway wire") as u64;
        }
        progress += self.switch.pump().expect("switch wire");
        for node in &mut self.nodes {
            progress += node
                .gateway
                .pump_in(&mut node.kernel)
                .expect("gateway wire");
            progress += node.gateway.flush().expect("gateway wire") as u64;
        }
        progress
    }

    /// Merged message statistics across every kernel. For a workload
    /// whose drops are deterministic, this equals the single-kernel
    /// stats for the same workload: remote sends are counted once, on
    /// the destination kernel (the source's `send` neither counts
    /// `sent` nor observes the outcome — §4 across the wire).
    pub fn stats(&self) -> Stats {
        let mut total = Stats::default();
        for node in &self.nodes {
            total.absorb(&node.kernel.stats());
        }
        total
    }

    /// Virtual elapsed time of the federation: the *maximum* kernel
    /// clock, since member kernels run concurrently in real deployments.
    pub fn elapsed_cycles(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.kernel.elapsed_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Summed wire traffic across every gateway connection.
    pub fn wire_stats(&self) -> ConnStats {
        let mut total = ConnStats::default();
        for node in &self.nodes {
            let s = node.gateway.wire_stats();
            total.frames_in += s.frames_in;
            total.frames_out += s.frames_out;
            total.bytes_in += s.bytes_in;
            total.bytes_out += s.bytes_out;
        }
        total
    }
}

/// Deploys OKWS across the cluster: front end on kernel 0, worker base
/// processes round-robin across kernels `1..N` (all workers stay on
/// kernel 0 when the cluster has one member — identical to plain
/// [`Okws::start`]).
///
/// The deployment sequence is the single-kernel one stretched over the
/// wire: workers boot first and publish their ports into the global
/// environment (replicated by the gateways, which `Register` the port
/// handles ahead of the bindings that carry them); then the launcher on
/// kernel 0 provisions verification handles and activates each worker
/// through the port directory — the activation grant (`wv` at `⋆`)
/// travels in the `Forward`'s labels and takes effect at *delivery* on
/// the worker's kernel, so the §7.1 trust chain is preserved end to end.
pub fn deploy_okws(cluster: &mut Cluster, mut config: OkwsConfig) -> Okws {
    let kernels = cluster.nodes.len();
    if kernels > 1 {
        for (i, spec) in config.services.iter_mut().enumerate() {
            let body = spec.take_body();
            let node = 1 + (i % (kernels - 1));
            cluster.nodes[node].kernel.spawn_ep_service(
                &format!("worker-{}", spec.name),
                Category::Okws,
                body,
            );
        }
        // Workers publish their ports; gateways replicate the bindings
        // (and register the ports) before the launcher looks for them.
        cluster.run();
    }
    let okws = Okws::start(&mut cluster.nodes[0].kernel, config);
    // Settle the cross-kernel activation handshakes.
    cluster.run();
    okws
}

/// Creates one kernel↔switch socket pair. With `ASBESTOS_CLUSTER_SOCKET`
/// set to a directory, the pair is a real path-bound `UnixListener`
/// accept/connect (two OS sockets with filesystem names); otherwise an
/// anonymous `UnixStream::pair`. The wire traffic is identical.
fn socket_pair(kernel: usize) -> io::Result<(UnixStream, UnixStream)> {
    match knobs::raw(knobs::CLUSTER_SOCKET_ENV) {
        Some(dir) if !dir.trim().is_empty() => {
            let path = Path::new(dir.trim()).join(format!(
                "asbestos-switch-{}-{kernel}.sock",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let gw = UnixStream::connect(&path)?;
            let (sw, _) = listener.accept()?;
            let _ = std::fs::remove_file(&path);
            Ok((gw, sw))
        }
        _ => UnixStream::pair(),
    }
}
