//! The federation switch: the hub every kernel's gateway connects to.
//!
//! The switch is the Portus-style controller of the cluster: it owns the
//! *port directory* (which kernel registered which port) and relays
//! traffic between gateways. It never looks inside labels or bodies —
//! routing is purely `port → owning kernel` — so the Figure 4 decision
//! stays where it belongs, on the destination kernel.
//!
//! Directory updates are push-based: a `Register` from kernel `k` is
//! broadcast to every *other* gateway as `ResolveR { port, Some(k) }`,
//! so by the time any kernel could hold a handle it learned through the
//! environment or a message body, the route for it is already on the
//! wire ahead of any `Forward` (the switch relays each connection's
//! frames in order, and gateways announce ports before the frames that
//! carry them).

use std::collections::HashMap;
use std::io;

use asbestos_labels::Handle;

use crate::conn::FrameConn;
use crate::wire::WireMsg;

/// The cluster's directory + relay hub.
pub struct Switch {
    /// One connection per kernel, indexed by kernel id.
    conns: Vec<FrameConn>,
    directory: HashMap<Handle, u16>,
    /// `Forward`s relayed to their destination kernel.
    pub forwarded: u64,
    /// `Forward`s for ports no kernel has registered (dropped, like a
    /// send to a dead port — the sender learns nothing).
    pub dropped_unroutable: u64,
}

impl Switch {
    /// Builds the switch over one connection per kernel; index = kernel id.
    pub fn new(conns: Vec<FrameConn>) -> Switch {
        Switch {
            conns,
            directory: HashMap::new(),
            forwarded: 0,
            dropped_unroutable: 0,
        }
    }

    /// Which kernel owns `port`, per the directory.
    pub fn owner_of(&self, port: Handle) -> Option<u16> {
        self.directory.get(&port).copied()
    }

    /// Number of directory entries.
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// Drains every connection, handles/relays its frames in arrival
    /// order, then flushes all connections. Returns progress units
    /// (frames handled + bytes flushed) — zero means fully quiescent.
    pub fn pump(&mut self) -> io::Result<u64> {
        let mut progress = 0u64;
        for k in 0..self.conns.len() {
            let msgs = self.conns[k].pump()?;
            for msg in msgs {
                progress += 1;
                self.handle(k as u16, msg);
            }
        }
        for conn in &mut self.conns {
            progress += conn.flush()? as u64;
        }
        Ok(progress)
    }

    fn handle(&mut self, from: u16, msg: WireMsg) {
        match msg {
            // Gateways never send ResolveR (it's the switch's answer);
            // one arriving is harmless noise.
            WireMsg::Hello { .. } | WireMsg::ResolveR { .. } | WireMsg::Bye => {}
            WireMsg::Register { port } => {
                self.directory.insert(port, from);
                self.broadcast_except(
                    from,
                    &WireMsg::ResolveR {
                        port,
                        kernel: Some(from),
                    },
                );
            }
            WireMsg::Unregister { port } => {
                // Only the owner may withdraw a port.
                if self.directory.get(&port) == Some(&from) {
                    self.directory.remove(&port);
                    self.broadcast_except(from, &WireMsg::ResolveR { port, kernel: None });
                }
            }
            WireMsg::Resolve { port } => {
                let kernel = self.owner_of(port);
                self.conns[from as usize].send(&WireMsg::ResolveR { port, kernel });
            }
            WireMsg::EnvSet { key, value } => {
                // Environment writes replicate everywhere (§4 bootstrap
                // namespace is cluster-global).
                self.broadcast_except(from, &WireMsg::EnvSet { key, value });
            }
            WireMsg::Forward {
                port,
                es,
                ds,
                dr,
                v,
                body,
            } => match self.owner_of(port) {
                Some(owner) if owner != from => {
                    self.forwarded += 1;
                    self.conns[owner as usize].send(&WireMsg::Forward {
                        port,
                        es,
                        ds,
                        dr,
                        v,
                        body,
                    });
                }
                Some(_) => {
                    // Port moved home before the frame arrived: bounce it
                    // back so the origin kernel delivers locally.
                    self.forwarded += 1;
                    self.conns[from as usize].send(&WireMsg::Forward {
                        port,
                        es,
                        ds,
                        dr,
                        v,
                        body,
                    });
                }
                None => self.dropped_unroutable += 1,
            },
        }
    }

    fn broadcast_except(&mut self, from: u16, msg: &WireMsg) {
        for (k, conn) in self.conns.iter_mut().enumerate() {
            if k as u16 != from {
                conn.send(msg);
            }
        }
    }
}
