//! The per-kernel gateway: a kernel's ambassador to the federation.
//!
//! Each kernel in a cluster gets one [`Gateway`], which owns that
//! kernel's switch connection and translates between kernel state and
//! wire traffic:
//!
//! * **Outbound** ([`Gateway::pump_out`]): diffs the kernel's global
//!   environment against a mirror and replicates new/changed bindings
//!   as `EnvSet`; drains the kernel's remote-send egress into `Forward`
//!   frames. Before anything that *carries* a local port handle leaves
//!   (an env value or a message body — reply ports ride in bodies), the
//!   gateway `Register`s that port, so the directory route is always on
//!   the wire ahead of the first frame that needs it.
//! * **Inbound** ([`Gateway::pump_in`]): applies directory pushes
//!   (`ResolveR`) to the kernel's remote-port table, applies replicated
//!   `EnvSet`s, and injects `Forward`s via [`Kernel::inject_remote`] —
//!   which enqueues on the destination port's shard, where the ordinary
//!   delivery path re-runs the Figure 4 check against *this* kernel's
//!   state. Verdicts never cross the wire; only labels do.
//!
//! The env mirror is also the echo brake: a binding applied from the
//! wire is mirrored first, so the next outbound diff sees no change and
//! nothing loops back to the switch.

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::sync::Arc;

use asbestos_kernel::{Handle, Kernel, RemoteSend, Value};

use crate::conn::{ConnStats, FrameConn};
use crate::wire::WireMsg;

/// One kernel's connection to the federation.
pub struct Gateway {
    kernel_id: u16,
    conn: FrameConn,
    /// Last-synced view of the global environment (ours + replicated).
    env_mirror: BTreeMap<String, Value>,
    /// Local ports already `Register`ed with the switch.
    announced: HashSet<Handle>,
    /// `Forward`s sent on behalf of this kernel.
    pub forwarded_out: u64,
    /// `Forward`s injected into this kernel.
    pub forwarded_in: u64,
}

impl Gateway {
    /// Wraps a switch connection for kernel `kernel_id` of `kernels`,
    /// sending the `Hello` preamble.
    pub fn new(kernel_id: u16, kernels: u16, mut conn: FrameConn) -> Gateway {
        conn.send(&WireMsg::Hello {
            kernel: kernel_id,
            kernels,
        });
        Gateway {
            kernel_id,
            conn,
            env_mirror: BTreeMap::new(),
            announced: HashSet::new(),
            forwarded_out: 0,
            forwarded_in: 0,
        }
    }

    /// This gateway's kernel id.
    pub fn kernel_id(&self) -> u16 {
        self.kernel_id
    }

    /// Wire traffic counters for this kernel's connection.
    pub fn wire_stats(&self) -> ConnStats {
        self.conn.stats()
    }

    /// Serializes new kernel state onto the wire: env diffs, then the
    /// remote-send egress. Returns the number of frames queued.
    pub fn pump_out(&mut self, kernel: &mut Kernel) -> u64 {
        let mut queued = 0u64;
        for (key, value) in kernel.global_env_snapshot() {
            if self.env_mirror.get(&key) == Some(&value) {
                continue;
            }
            queued += self.announce_ports_in(kernel, &value);
            self.conn.send(&WireMsg::EnvSet {
                key: key.clone(),
                value: value.clone(),
            });
            self.env_mirror.insert(key, value);
            queued += 1;
        }
        for rs in kernel.take_remote_egress() {
            // Reply ports travel in message bodies; route them first.
            queued += self.announce_ports_in(kernel, &rs.body);
            self.conn.send(&WireMsg::Forward {
                port: rs.port,
                es: (*rs.es).clone(),
                ds: rs.ds,
                dr: rs.dr,
                v: rs.v,
                body: rs.body,
            });
            self.forwarded_out += 1;
            queued += 1;
        }
        queued
    }

    /// Applies everything the switch pushed at us. Returns the number of
    /// frames handled.
    pub fn pump_in(&mut self, kernel: &mut Kernel) -> io::Result<u64> {
        let msgs = self.conn.pump()?;
        let mut handled = 0u64;
        for msg in msgs {
            handled += 1;
            match msg {
                WireMsg::ResolveR {
                    port,
                    kernel: Some(owner),
                } => {
                    if owner != self.kernel_id && !kernel.is_local_port(port) {
                        kernel.register_remote_port(port, owner);
                    }
                }
                WireMsg::ResolveR { port, kernel: None } => {
                    kernel.unregister_remote_port(port);
                }
                WireMsg::EnvSet { key, value } => {
                    // Mirror first: the next outbound diff must see this
                    // binding as already-synced, or it would echo forever.
                    self.env_mirror.insert(key.clone(), value.clone());
                    kernel.set_global_env(&key, value);
                }
                WireMsg::Forward {
                    port,
                    es,
                    ds,
                    dr,
                    v,
                    body,
                } => {
                    self.forwarded_in += 1;
                    kernel.inject_remote(RemoteSend {
                        port,
                        body,
                        es: Arc::new(es),
                        ds,
                        dr,
                        v,
                    });
                }
                WireMsg::Hello { .. }
                | WireMsg::Register { .. }
                | WireMsg::Unregister { .. }
                | WireMsg::Resolve { .. }
                | WireMsg::Bye => {}
            }
        }
        Ok(handled)
    }

    /// Pushes buffered frames into the socket; returns bytes moved.
    pub fn flush(&mut self) -> io::Result<usize> {
        self.conn.flush()
    }

    /// Whether this gateway still has unflushed output.
    pub fn has_pending_output(&self) -> bool {
        self.conn.has_pending_output()
    }

    /// `Register`s every not-yet-announced local port handle reachable in
    /// `value` (recursing through lists). Handles inside opaque byte
    /// payloads are invisible — by the paper's §4 bootstrap conventions,
    /// ports propagate as `Value::Handle`s, not as raw bytes.
    fn announce_ports_in(&mut self, kernel: &Kernel, value: &Value) -> u64 {
        let mut queued = 0u64;
        match value {
            Value::Handle(h) if kernel.is_local_port(*h) && self.announced.insert(*h) => {
                self.conn.send(&WireMsg::Register { port: *h });
                queued += 1;
            }
            Value::List(items) => {
                for item in items {
                    queued += self.announce_ports_in(kernel, item);
                }
            }
            _ => {}
        }
        queued
    }
}
