//! # asbestos-cluster
//!
//! Multi-kernel federation: labels across the wire.
//!
//! The paper's kernel is one machine; this crate federates N
//! [`Kernel`](asbestos_kernel::Kernel) instances into one label system
//! over real sockets. The design keeps the paper's semantics by moving
//! *labels*, never *verdicts*:
//!
//! * [`wire`] — the serialized form: a typed [`WireMsg`](wire::WireMsg)
//!   enum in length-prefixed, CRC-framed, versioned frames. Labels
//!   travel as their §5.6 packed entries and are re-validated on
//!   arrival; payload bytes are zero-copy views of the received frame.
//! * [`conn`] — [`FrameConn`](conn::FrameConn), a nonblocking framed
//!   `UnixStream` (partial reads/writes are normal, nothing blocks).
//! * [`switch`] — the hub: a port directory (`Register`/`Resolve`/
//!   push-based `ResolveR`) plus a `Forward` relay. It routes by port
//!   handle only and never interprets labels.
//! * [`gateway`] — each kernel's ambassador: replicates the global
//!   environment, announces local ports, drains the kernel's remote
//!   egress outward, and injects arriving `Forward`s inward, where the
//!   ordinary delivery path re-runs the Figure 4 check against the
//!   *destination* kernel's state. A verdict is derived only from
//!   destination-side state — the same isolation rule the sharded
//!   kernel enforces, stretched across the wire.
//! * [`cluster`] — [`Cluster`]: construction (disjoint handle-cipher
//!   lanes per kernel keep §5.1 uniqueness cluster-wide), the
//!   run-to-quiescence federation scheduler, and [`deploy_okws`] for
//!   placing the §7 web server across kernels.

pub mod cluster;
pub mod conn;
pub mod gateway;
pub mod switch;
pub mod wire;

pub use cluster::{deploy_okws, Cluster, ClusterNode};
pub use conn::{ConnStats, FrameConn};
pub use gateway::Gateway;
pub use switch::Switch;
pub use wire::{decode_frame, encode_frame, WireError, WireMsg, WIRE_VERSION};
