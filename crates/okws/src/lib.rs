//! # asbestos-okws
//!
//! The OK web server on Asbestos (§7 of the paper): launcher, ok-demux,
//! idd, event-process workers, and §7.6 declassifiers, wired to netd
//! (asbestos-net) and ok-dbproxy (asbestos-db).
//!
//! The deployment reproduces Figure 1's architecture and Figure 5's
//! message flow: untrusted per-service workers hold per-user session state
//! in event processes; the kernel's label checks — not worker correctness —
//! enforce that one user's data cannot reach another user.
//!
//! ```no_run
//! use asbestos_kernel::Kernel;
//! use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};
//! use asbestos_okws::logic::EchoStore;
//!
//! let mut kernel = Kernel::new(7);
//! let mut config = OkwsConfig::new(80);
//! config.services.push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
//! config.users.push(("alice".into(), "pw".into()));
//! let okws = Okws::start(&mut kernel, config);
//! let mut client = OkwsClient::new(&okws);
//! let (status, body) =
//!     client.request_sync(&mut kernel, "store", "alice", "pw", &[("data", "hi")]).unwrap();
//! assert_eq!(status, 200);
//! assert!(body.is_empty()); // first request: nothing stored yet
//! ```

pub mod cache;
pub mod demux;
pub mod idd;
pub mod launcher;
pub mod logic;
pub mod proto;
pub mod server;
pub mod worker;

pub use cache::{spawn_cache, CacheHandle, CacheMsg, OkCache};
pub use demux::OkDemux;
pub use idd::{spawn_idd, Idd, IddHandle};
pub use launcher::{Launcher, OkwsConfig, ServiceSpec};
pub use logic::{
    Action, CachedProfile, EchoStore, ParamLength, Passwd, Profile, SessionStore, WorkerLogic,
};
pub use proto::OkwsMsg;
pub use server::{Okws, OkwsClient};
pub use worker::Worker;
