//! OKWS assembly, reboot, and a test/bench client.

use asbestos_kernel::{Category, CostModel, Kernel, Level, ProcessId, Value};
use asbestos_net::{spawn_netd_lanes, ClientDriver, NetdHandle, NETD_SHED_ENV};
use asbestos_store::Store;

use crate::launcher::{Launcher, OkwsConfig};

/// A running OKWS deployment.
pub struct Okws {
    /// The network server's handle (substrate access for drivers).
    pub netd: NetdHandle,
    /// The TCP port OKWS serves.
    pub tcp_port: u16,
    /// The launcher's process id.
    pub launcher: ProcessId,
}

impl Okws {
    /// Spawns netd and the full OKWS process suite, then runs the kernel
    /// until startup settles (registration, table creation, accounts).
    ///
    /// The kernel's shard count is whatever the caller built it with;
    /// [`Okws::deploy`] constructs the kernel from the config's own
    /// `shards` field.
    ///
    /// On a multi-shard kernel the assembler also does the placement the
    /// launcher cannot (`Sys::spawn` is shard-local): netd lanes go one
    /// per shard, worker base processes spread round-robin across the
    /// shards after the launcher's, and the launcher — with ok-demux,
    /// idd, and ok-dbproxy, which it spawns locally — sits next to
    /// lane 0. The launcher still provisions every verification handle
    /// and activates the placed workers, so the §7.1 trust chain is
    /// unchanged. A single-shard kernel takes the launcher-spawns-
    /// everything path of the paper, bit for bit.
    pub fn start(kernel: &mut Kernel, mut config: OkwsConfig) -> Okws {
        let tcp_port = config.tcp_port;
        if let Some(limit) = config.port_queue {
            kernel.set_port_queue_limit(limit);
        }
        if config.backpressure {
            // Overload control is a deployment policy: arm the kernel's
            // credit loop and tell every netd lane it may shed accepts.
            kernel.set_backpressure(true);
            kernel.set_global_env(NETD_SHED_ENV, Value::U64(1));
        }
        let netd = spawn_netd_lanes(kernel, config.netd_lanes);
        let shards = kernel.num_shards();
        let launcher = if shards > 1 {
            let launcher_shard = 1 % shards;
            for (i, spec) in config.services.iter_mut().enumerate() {
                if spec.is_placed() {
                    // A cluster assembler already spawned this worker on
                    // another kernel; the launcher will activate it
                    // through the port directory.
                    continue;
                }
                let body = spec.take_body();
                let shard = (launcher_shard + 1 + i) % shards;
                kernel.spawn_ep_service_on(
                    shard,
                    &format!("worker-{}", spec.name),
                    Category::Okws,
                    body,
                );
            }
            kernel.spawn_on(
                launcher_shard,
                "launcher",
                Category::Okws,
                Box::new(Launcher::new(config)),
            )
        } else {
            kernel.spawn("launcher", Category::Okws, Box::new(Launcher::new(config)))
        };
        kernel.run();
        Okws {
            netd,
            tcp_port,
            launcher,
        }
    }

    /// Builds a kernel with the shard count the config asks for
    /// (`OkwsConfig::shards`) and deploys OKWS on it — the one-call
    /// launcher/worker wiring for sharded deployments.
    ///
    /// A durable config ([`OkwsConfig::durable`]) boots as the epoch
    /// *after* the device's last recorded boot, so the kernel's handle
    /// cipher never re-mints a dead boot's handles (§5.1: handles are
    /// unique since boot — here, across actual reboots too).
    pub fn deploy(seed: u64, config: OkwsConfig) -> (Kernel, Okws) {
        let epoch = config
            .db_store
            .as_ref()
            .map_or(0, |dev| Store::peek_epoch(dev.as_ref()) + 1);
        let mut kernel = Kernel::with_boot_epoch(seed, CostModel::default(), config.shards, epoch);
        let okws = Okws::start(&mut kernel, config);
        (kernel, okws)
    }

    /// Boots the next epoch of a durable deployment: the device in
    /// `config` carries the previous boot's snapshot + WAL, and the new
    /// kernel recovers it during assembly. Everything per-boot is fresh —
    /// handles (idd mints new `uT`/`uG` pairs on first login and
    /// re-grants ok-dbproxy `⋆` on each), ports, sessions — while the
    /// database rows and their hidden ownership column persist, and
    /// `Bind` re-connects each user's fresh taint handle to their
    /// recovered rows.
    ///
    /// # Panics
    ///
    /// Panics if `config` has no durable store — a volatile deployment
    /// has nothing to reboot *from*.
    pub fn reboot(seed: u64, config: OkwsConfig) -> (Kernel, Okws) {
        assert!(
            config.db_store.is_some(),
            "reboot needs a durable store (OkwsConfig::durable)"
        );
        Okws::deploy(seed, config)
    }

    /// Cleanly shuts the deployment down: drains the kernel, then runs
    /// every service's teardown hook so ok-dbproxy group-commits its WAL
    /// tail. Crash = skipping this and just dropping the kernel.
    pub fn shutdown(self, kernel: &mut Kernel) {
        kernel.run();
        kernel.teardown();
    }

    /// Every handle idd currently holds at `⋆` — its ports plus the
    /// per-user `uT`/`uG` pairs it minted this boot. The login-storm
    /// scenarios snapshot this before and after a reboot to pin §5.1
    /// across boots: handles are unique since boot, so no boot-N handle
    /// may ever be observed after boot N+1 comes up.
    pub fn idd_star_handles(kernel: &Kernel) -> Vec<u64> {
        let idd = kernel
            .find_process("idd")
            .expect("a deployed OKWS always has an idd");
        kernel
            .process(idd)
            .send_label
            .iter()
            .filter(|(_, level)| *level == Level::Star)
            .map(|(h, _)| h.raw())
            .collect()
    }
}

/// An HTTP client for a running OKWS (test and benchmark harness).
pub struct OkwsClient {
    /// The underlying connection driver.
    pub driver: ClientDriver,
    tcp_port: u16,
}

impl OkwsClient {
    /// Creates a client for the deployment.
    pub fn new(okws: &Okws) -> OkwsClient {
        OkwsClient {
            driver: ClientDriver::new(&okws.netd),
            tcp_port: okws.tcp_port,
        }
    }

    /// Issues `GET /{service}?user=&pw=&extra…` and returns the request
    /// index. The caller decides when to run the kernel.
    pub fn request(
        &mut self,
        kernel: &mut Kernel,
        service: &str,
        user: &str,
        password: &str,
        extra: &[(&str, &str)],
    ) -> usize {
        let mut target = format!("/{service}?user={user}&pw={password}");
        for (k, v) in extra {
            target.push('&');
            target.push_str(k);
            target.push('=');
            target.push_str(v);
        }
        self.driver.get(kernel, self.tcp_port, &target)
    }

    /// Issues a request and runs the kernel until it completes; returns
    /// `(status, body)` if a well-formed response arrived.
    pub fn request_sync(
        &mut self,
        kernel: &mut Kernel,
        service: &str,
        user: &str,
        password: &str,
        extra: &[(&str, &str)],
    ) -> Option<(u16, Vec<u8>)> {
        let idx = self.request(kernel, service, user, password, extra);
        kernel.run();
        self.driver.poll(kernel);
        self.parse_response(idx)
    }

    /// Parses a completed response into `(status, body)`.
    pub fn parse_response(&self, idx: usize) -> Option<(u16, Vec<u8>)> {
        let raw = &self.driver.request(idx).response;
        if raw.is_empty() {
            return None;
        }
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
        let head = std::str::from_utf8(&raw[..head_end]).ok()?;
        let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
        Some((status, raw[head_end..].to_vec()))
    }
}
