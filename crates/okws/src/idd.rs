//! idd: the OKWS identity server (§7.4).
//!
//! idd associates persistent identification data (username, password) with
//! the per-boot taint and grant handles `uT`/`uG`. It stores user records
//! in a relational database reached through ok-dbproxy's trusted admin path
//! ("idd has special access through ok-dbproxy to this password database,
//! which other processes such as workers cannot access directly"), mints
//! handle pairs on first login, caches them, and grants every new taint
//! handle to ok-dbproxy at `⋆` (§7.5).

use std::collections::{BTreeMap, BTreeSet};

use asbestos_db::{DbMsg, SqlValue, DB_TRUSTED_ENV};
use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, ProcessId, SendArgs, Service, Sys, Value,
};

use crate::proto::OkwsMsg;

/// Environment key for idd's login port.
pub const IDD_PORT_ENV: &str = "okws.idd.port";

/// Environment key holding the demux verification handle value (set by the
/// launcher; idd checks `V(demux_verify) ≤ 0` on Login).
pub const IDD_DEMUX_VERIFY_ENV: &str = "okws.idd.demux_verify";

/// Environment key holding the launcher verification handle value (idd
/// checks it on AddUser and worker-table DDL).
pub const LAUNCHER_VERIFY_ENV: &str = "okws.launcher.verify";

/// Cycles idd charges per login (cache bookkeeping, excluding DB work,
/// which ok-dbproxy charges itself).
pub const IDD_LOGIN_CYCLES: u64 = 60_000;

/// Environment key for idd's shared-cache trusted port (published only
/// when a shared cache is deployed; the cache announces its admin port
/// here and receives user bindings, mirroring ok-dbproxy's §7.5 flow).
pub const CACHE_TRUSTED_ENV: &str = "okws.cache.trusted";

struct PendingLogin {
    user: String,
    password_matched: bool,
    reply: Handle,
    /// Outstanding `BindR` acks this login is waiting on (first login of
    /// a user only; zero once every admin party holds the binding).
    awaiting_binds: usize,
}

/// The idd service.
pub struct Idd {
    login_port: Option<Handle>,
    trusted_port: Option<Handle>,
    cache_trusted_port: Option<Handle>,
    admin: Option<Handle>,
    /// The shared cache's admin port, when one is deployed.
    cache_admin: Option<Handle>,
    /// Cached user → (uT, uG) bindings ("never cleans its cache", §7.4).
    cache: BTreeMap<String, (Handle, Handle)>,
    /// In-flight logins keyed by their private reply port.
    pending: BTreeMap<Handle, PendingLogin>,
    /// Users whose `Bind` every admin party has acked. A `LoginR` is
    /// released only for bound users: the worker's first tainted query
    /// takes a different port than the `Bind`, so the kernel gives no
    /// ordering between them — without the ack the query can be
    /// label-dropped and the event process wedges awaiting the reply.
    bound: BTreeSet<String>,
    /// Logins parked behind another login's in-flight `Bind` for the
    /// same user (they hit the handle cache but must not overtake the
    /// registration).
    bind_waiters: BTreeMap<String, Vec<Handle>>,
}

impl Idd {
    /// Creates an idd with an empty cache.
    pub fn new() -> Idd {
        Idd {
            login_port: None,
            trusted_port: None,
            cache_trusted_port: None,
            admin: None,
            cache_admin: None,
            cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            bound: BTreeSet::new(),
            bind_waiters: BTreeMap::new(),
        }
    }

    fn verify_ok(&self, sys: &Sys<'_>, env_key: &str, verify: &Label) -> bool {
        match sys.env(env_key).and_then(|v| v.as_handle()) {
            Some(h) => verify.get(h) <= Level::L0,
            None => false,
        }
    }

    fn finish_login(&mut self, sys: &mut Sys<'_>, port: Handle) {
        let Some(mut pending) = self.pending.remove(&port) else {
            return;
        };
        sys.charge(IDD_LOGIN_CYCLES);
        if !pending.password_matched {
            let _ = sys.send(
                pending.reply,
                OkwsMsg::LoginR {
                    ok: false,
                    user: pending.user,
                    taint: None,
                    grant: None,
                }
                .to_value(),
            );
            self.release_login_caps(sys, port, pending.reply);
            return;
        }
        // Get or mint the user's handles (§7.2 step 4: "it either generates
        // new uT and uG handles (if u has not logged in recently), or
        // returns cached uT and uG handles").
        if !self.cache.contains_key(&pending.user) {
            let taint = sys.new_handle();
            let grant = sys.new_handle();
            // Accept this user's taint from now on: tainted worker
            // event processes send us password-change requests, and we
            // hold ⋆ (as creator), so contamination never sticks.
            sys.raise_recv(taint, Level::L3)
                .expect("we created the taint handle");
            self.cache.insert(pending.user.clone(), (taint, grant));
            // §7.5: register the binding with ok-dbproxy — and with the
            // shared cache when one is deployed — granting each the
            // handles at ⋆. Each party acks on our per-login port; the
            // LoginR is withheld until every ack is in (see `bound`).
            let bind = DbMsg::Bind {
                user: pending.user.clone(),
                taint,
                grant,
                reply: Some(port),
            };
            let grant_args = SendArgs::new().grant(Label::from_pairs(
                Level::L3,
                &[
                    (taint, Level::Star),
                    (grant, Level::Star),
                    (port, Level::Star),
                ],
            ));
            let mut sent = 0;
            for admin in [self.admin, self.cache_admin].into_iter().flatten() {
                let _ = sys.send_args(admin, bind.to_value(), &grant_args);
                sent += 1;
            }
            if sent > 0 {
                pending.awaiting_binds = sent;
                self.pending.insert(port, pending);
                return;
            }
        } else if !self.bound.contains(&pending.user) {
            // Another login's Bind for this user is still in flight; park
            // behind it so this session cannot overtake the registration.
            self.bind_waiters
                .entry(pending.user.clone())
                .or_default()
                .push(port);
            self.pending.insert(port, pending);
            return;
        }
        self.bound.insert(pending.user.clone());
        self.complete_login(sys, port, pending);
    }

    /// Releases the `LoginR` for a login whose binding is registered
    /// everywhere it needs to be.
    fn complete_login(&mut self, sys: &mut Sys<'_>, port: Handle, pending: PendingLogin) {
        let &(taint, grant) = self
            .cache
            .get(&pending.user)
            .expect("binding cached before any Bind was sent");
        // §7.2 step 4: grant ok-demux both handles at ⋆.
        let _ = sys.send_args(
            pending.reply,
            OkwsMsg::LoginR {
                ok: true,
                user: pending.user,
                taint: Some(taint),
                grant: Some(grant),
            }
            .to_value(),
            &SendArgs::new().grant(Label::from_pairs(
                Level::L3,
                &[(taint, Level::Star), (grant, Level::Star)],
            )),
        );
        self.release_login_caps(sys, port, pending.reply);
    }

    /// One admin party acked a `Bind` on per-login port `port`. Once all
    /// acks are in, the user is bound: release the initiating login and
    /// any same-user logins parked behind it.
    fn on_bind_ack(&mut self, sys: &mut Sys<'_>, port: Handle) {
        let done = match self.pending.get_mut(&port) {
            Some(p) => {
                p.awaiting_binds = p.awaiting_binds.saturating_sub(1);
                p.awaiting_binds == 0
            }
            None => false,
        };
        if !done {
            return;
        }
        let pending = self.pending.remove(&port).expect("checked above");
        let user = pending.user.clone();
        self.bound.insert(user.clone());
        self.complete_login(sys, port, pending);
        for waiter in self.bind_waiters.remove(&user).unwrap_or_default() {
            if let Some(parked) = self.pending.remove(&waiter) {
                self.complete_login(sys, waiter, parked);
            }
        }
    }

    /// Drops the per-login capabilities: our private reply port and the
    /// ⋆ ok-demux granted us for its connection port. §9.3 calls this out —
    /// labels "must be updated to include a capability for each new TCP
    /// connection, and then to release that capability" — or idd's send
    /// label would grow per connection instead of per user.
    fn release_login_caps(&mut self, sys: &mut Sys<'_>, port: Handle, demux_reply: Handle) {
        let _ = sys.dissociate_port(port);
        sys.self_contaminate(&Label::from_pairs(
            Level::Star,
            &[(port, Level::L1), (demux_reply, Level::L1)],
        ));
    }
}

impl Default for Idd {
    fn default() -> Idd {
        Idd::new()
    }
}

impl Service for Idd {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        // Login port: open; access control is the V check, not secrecy.
        let login = sys.new_port(Label::top());
        sys.set_port_label(login, Label::top())
            .expect("creator owns the port");
        sys.publish_env(IDD_PORT_ENV, Value::Handle(login));
        self.login_port = Some(login);

        // Trusted notification port for ok-dbproxy's admin-port grant.
        let trusted = sys.new_port(Label::top());
        sys.set_port_label(trusted, Label::top())
            .expect("creator owns the port");
        sys.publish_env(DB_TRUSTED_ENV, Value::Handle(trusted));
        self.trusted_port = Some(trusted);

        // Trusted notification port for the shared cache (if deployed).
        let cache_trusted = sys.new_port(Label::top());
        sys.set_port_label(cache_trusted, Label::top())
            .expect("creator owns the port");
        sys.publish_env(CACHE_TRUSTED_ENV, Value::Handle(cache_trusted));
        self.cache_trusted_port = Some(cache_trusted);
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        // ok-dbproxy announces its admin port (with an admin ⋆ grant).
        if Some(msg.port) == self.trusted_port {
            if let Some(DbMsg::AdminPort { port }) = DbMsg::from_value(&msg.body) {
                self.admin = Some(port);
                // Create the private credential table (§7.4). Raw access:
                // workers can never reach this table. Deliberately left
                // unindexed: the paper attributes Figure 9's fast-growing
                // OKDB line to the unoptimized SQLite lookup path ("This
                // may simply represent another cost of using unoptimized
                // system components, in this case SQLite"), and a linear
                // scan per first-time login reproduces exactly that growth.
                let _ = sys.send(
                    port,
                    DbMsg::Exec {
                        user: String::new(),
                        sql: "CREATE TABLE okws_users (name, pw)".into(),
                        params: vec![],
                        reply: None,
                    }
                    .to_value(),
                );
            }
            return;
        }

        // The shared cache announces its admin port (with an admin ⋆ grant).
        if Some(msg.port) == self.cache_trusted_port {
            if let Some(DbMsg::AdminPort { port }) = DbMsg::from_value(&msg.body) {
                self.cache_admin = Some(port);
                // Bind any already-known users so a late-started cache
                // still gets the full taint table.
                for (user, &(taint, grant)) in &self.cache {
                    let _ = sys.send_args(
                        port,
                        DbMsg::Bind {
                            user: user.clone(),
                            taint,
                            grant,
                            reply: None,
                        }
                        .to_value(),
                        &SendArgs::new().grant(Label::from_pairs(
                            Level::L3,
                            &[(taint, Level::Star), (grant, Level::Star)],
                        )),
                    );
                }
            }
            return;
        }

        // Login replies from the database land on per-login ports.
        if let Some(pending) = self.pending.get_mut(&msg.port) {
            match DbMsg::from_value(&msg.body) {
                Some(DbMsg::Row { .. }) => {
                    pending.password_matched = true;
                }
                Some(DbMsg::Done) => {
                    self.finish_login(sys, msg.port);
                }
                Some(DbMsg::BindR) => {
                    self.on_bind_ack(sys, msg.port);
                }
                _ => {}
            }
            return;
        }

        let Some(okws_msg) = OkwsMsg::from_value(&msg.body) else {
            // Worker-table DDL relayed from the launcher: ["worker-ddl", sql]
            // with the launcher's verification label.
            if let Some(items) = msg.body.as_list() {
                if items.first().and_then(Value::as_str) == Some("worker-ddl")
                    && self.verify_ok(sys, LAUNCHER_VERIFY_ENV, &msg.verify)
                {
                    if let (Some(sql), Some(admin)) =
                        (items.get(1).and_then(Value::as_str), self.admin)
                    {
                        let _ = sys.send(
                            admin,
                            DbMsg::Ddl {
                                sql: sql.to_string(),
                            }
                            .to_value(),
                        );
                    }
                }
            }
            return;
        };
        match okws_msg {
            OkwsMsg::AddUser { user, password } => {
                // Only the launcher may create accounts (§7.1's V pattern).
                if !self.verify_ok(sys, LAUNCHER_VERIFY_ENV, &msg.verify) {
                    return;
                }
                if let Some(admin) = self.admin {
                    let _ = sys.send(
                        admin,
                        DbMsg::Exec {
                            user: String::new(),
                            sql: "INSERT INTO okws_users VALUES (?, ?)".into(),
                            params: vec![SqlValue::Text(user), SqlValue::Text(password)],
                            reply: None,
                        }
                        .to_value(),
                    );
                }
            }
            OkwsMsg::ChangePassword {
                user,
                new_password,
                reply,
            } => {
                sys.charge(IDD_LOGIN_CYCLES);
                // The sender must speak for the user: V(uG) ≤ 0 against the
                // *bound* grant handle (§5.4's discretionary integrity).
                let authorized = self
                    .cache
                    .get(&user)
                    .map(|&(_t, g)| msg.verify.get(g) <= Level::L0)
                    .unwrap_or(false);
                if !authorized {
                    let _ = sys.send(
                        reply,
                        DbMsg::ExecR {
                            ok: false,
                            affected: 0,
                        }
                        .to_value(),
                    );
                    return;
                }
                if let Some(admin) = self.admin {
                    // Raw update on the private credential table; the
                    // outcome flows back to the worker's reply port.
                    let _ = sys.send_args(
                        admin,
                        DbMsg::Exec {
                            user: String::new(),
                            sql: "UPDATE okws_users SET pw = ? WHERE name = ?".into(),
                            params: vec![SqlValue::Text(new_password), SqlValue::Text(user)],
                            reply: Some(reply),
                        }
                        .to_value(),
                        &SendArgs::new()
                            .grant(Label::from_pairs(Level::L3, &[(reply, Level::Star)])),
                    );
                }
            }
            OkwsMsg::Login {
                user,
                password,
                reply,
            } => {
                // Only ok-demux may drive logins.
                if !self.verify_ok(sys, IDD_DEMUX_VERIFY_ENV, &msg.verify) {
                    return;
                }
                sys.charge(IDD_LOGIN_CYCLES);
                let Some(admin) = self.admin else { return };
                // Per-login reply port; the DB answer routes back here.
                let port = sys.new_port(Label::top());
                self.pending.insert(
                    port,
                    PendingLogin {
                        user: user.clone(),
                        password_matched: false,
                        reply,
                        awaiting_binds: 0,
                    },
                );
                let _ = sys.send_args(
                    admin,
                    DbMsg::Query {
                        sql: "SELECT name FROM okws_users WHERE name = ? AND pw = ?".into(),
                        params: vec![SqlValue::Text(user), SqlValue::Text(password)],
                        reply: port,
                    }
                    .to_value(),
                    &SendArgs::new().grant(Label::from_pairs(Level::L3, &[(port, Level::Star)])),
                );
            }
            _ => {}
        }
    }
}

/// Spawn info for idd (standalone spawns are used by tests; OKWS normally
/// starts idd through the launcher).
pub struct IddHandle {
    /// idd's process id.
    pub pid: ProcessId,
    /// The login port.
    pub port: Handle,
}

/// Spawns idd directly (test use).
pub fn spawn_idd(kernel: &mut Kernel) -> IddHandle {
    let pid = kernel.spawn("idd", Category::Okdb, Box::new(Idd::new()));
    let port = kernel
        .global_env(IDD_PORT_ENV)
        .and_then(|v| v.as_handle())
        .expect("idd publishes its login port");
    IddHandle { pid, port }
}
