//! ok-cache: a shared, user-isolated cache.
//!
//! §2: "A production system would additionally have a cache shared by all
//! workers, and Asbestos could without much trouble support a shared cache
//! that isolated users." This module is that cache: one process shared by
//! every worker, holding per-user entries, with the same label discipline
//! as ok-dbproxy — writes gated on `V ⊑ {uT 3, uG 0, 2}`, reads returned
//! contaminated with the owning user's taint at 3, misses untainted.
//!
//! Like ok-dbproxy, the cache learns user ↔ handle bindings from idd
//! (speaking the same `Bind`/`AdminPort` admin protocol) and is granted
//! every taint handle at `⋆`.

use std::collections::BTreeMap;

use asbestos_db::DbMsg;
use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, Payload, ProcessId, SendArgs, Service, Sys,
    Value,
};

use crate::idd::CACHE_TRUSTED_ENV;

/// Environment key for the cache's worker-facing port.
pub const CACHE_PORT_ENV: &str = "okws.cache.port";

/// Cycles charged per cache operation.
pub const CACHE_OP_CYCLES: u64 = 12_000;

/// A message in the cache protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheMsg {
    /// Store `bytes` under `key` for `user`. Requires the §7.5 write proof.
    Put {
        /// Acting user.
        user: String,
        /// Cache key (shared namespace; ownership isolates values).
        key: String,
        /// Cached bytes (a refcounted view; storing shares, not copies).
        bytes: Payload,
    },
    /// Look up `key`. The cache replies with ok-dbproxy's two-message
    /// pattern (§7.5): a [`CacheMsg::Hit`] contaminated with the owner's
    /// taint (which the kernel may drop), then an untainted
    /// [`CacheMsg::GetDone`] terminator — so a requester that may not see
    /// the entry observes an ordinary miss.
    Get {
        /// Cache key.
        key: String,
        /// Reply port.
        reply: Handle,
    },
    /// A cache hit (contaminated with the owning user's taint at 3).
    Hit {
        /// Cache key echoed back.
        key: String,
        /// The cached bytes (shared with the stored entry — a hit moves a
        /// refcount, never the bytes).
        bytes: Payload,
    },
    /// End of a lookup; always delivered untainted.
    GetDone {
        /// Cache key echoed back.
        key: String,
    },
    /// Evict a user's key (requires the same proof as Put).
    Evict {
        /// Acting user.
        user: String,
        /// Cache key.
        key: String,
    },
}

impl CacheMsg {
    /// Encodes to a [`Value`] payload.
    pub fn to_value(&self) -> Value {
        match self {
            CacheMsg::Put { user, key, bytes } => Value::List(vec![
                Value::Str("cache-put".into()),
                Value::Str(user.clone()),
                Value::Str(key.clone()),
                Value::Bytes(bytes.clone()),
            ]),
            CacheMsg::Get { key, reply } => Value::List(vec![
                Value::Str("cache-get".into()),
                Value::Str(key.clone()),
                Value::Handle(*reply),
            ]),
            CacheMsg::Hit { key, bytes } => Value::List(vec![
                Value::Str("cache-hit".into()),
                Value::Str(key.clone()),
                Value::Bytes(bytes.clone()),
            ]),
            CacheMsg::GetDone { key } => Value::List(vec![
                Value::Str("cache-get-done".into()),
                Value::Str(key.clone()),
            ]),
            CacheMsg::Evict { user, key } => Value::List(vec![
                Value::Str("cache-evict".into()),
                Value::Str(user.clone()),
                Value::Str(key.clone()),
            ]),
        }
    }

    /// Decodes from a [`Value`] payload.
    pub fn from_value(value: &Value) -> Option<CacheMsg> {
        let items = value.as_list()?;
        match items.first()?.as_str()? {
            "cache-put" => Some(CacheMsg::Put {
                user: items.get(1)?.as_str()?.to_string(),
                key: items.get(2)?.as_str()?.to_string(),
                bytes: items.get(3)?.as_payload()?.clone(),
            }),
            "cache-get" => Some(CacheMsg::Get {
                key: items.get(1)?.as_str()?.to_string(),
                reply: items.get(2)?.as_handle()?,
            }),
            "cache-hit" => Some(CacheMsg::Hit {
                key: items.get(1)?.as_str()?.to_string(),
                bytes: items.get(2)?.as_payload()?.clone(),
            }),
            "cache-get-done" => Some(CacheMsg::GetDone {
                key: items.get(1)?.as_str()?.to_string(),
            }),
            "cache-evict" => Some(CacheMsg::Evict {
                user: items.get(1)?.as_str()?.to_string(),
                key: items.get(2)?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

struct Binding {
    taint: Handle,
    grant: Handle,
}

struct Entry {
    owner_taint: Handle,
    bytes: Payload,
}

/// The shared-cache service.
pub struct OkCache {
    users: BTreeMap<String, Binding>,
    entries: BTreeMap<String, Entry>,
    worker_port: Option<Handle>,
    admin_port: Option<Handle>,
}

impl OkCache {
    /// Creates an empty cache.
    pub fn new() -> OkCache {
        OkCache {
            users: BTreeMap::new(),
            entries: BTreeMap::new(),
            worker_port: None,
            admin_port: None,
        }
    }

    /// The §7.5 write gate, shared with ok-dbproxy.
    fn write_allowed(&self, user: &str, verify: &Label) -> Option<&Binding> {
        let binding = self.users.get(user)?;
        let bound = Label::from_pairs(
            Level::L2,
            &[(binding.taint, Level::L3), (binding.grant, Level::L0)],
        );
        if verify.leq(&bound) {
            Some(binding)
        } else {
            None
        }
    }

    /// Number of live entries (god-mode stat).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for OkCache {
    fn default() -> OkCache {
        OkCache::new()
    }
}

impl Service for OkCache {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(CACHE_PORT_ENV, Value::Handle(port));
        self.worker_port = Some(port);

        // Announce our (closed) admin port to idd; bindings arrive there.
        let admin = sys.new_port(Label::top());
        self.admin_port = Some(admin);
        if let Some(trusted) = sys.env(CACHE_TRUSTED_ENV).and_then(|v| v.as_handle()) {
            let _ = sys.send_args(
                trusted,
                DbMsg::AdminPort { port: admin }.to_value(),
                &SendArgs::new().grant(Label::from_pairs(Level::L3, &[(admin, Level::Star)])),
            );
        }
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        if Some(msg.port) == self.admin_port {
            if let Some(DbMsg::Bind {
                user,
                taint,
                grant,
                reply,
            }) = DbMsg::from_value(&msg.body)
            {
                sys.raise_recv(taint, Level::L3)
                    .expect("Bind arrives with a ⋆ grant for the taint handle");
                self.users.insert(user, Binding { taint, grant });
                // Ack so the binder can release the user's first request.
                if let Some(reply) = reply {
                    let _ = sys.send(reply, DbMsg::BindR.to_value());
                }
            }
            return;
        }
        let Some(cache_msg) = CacheMsg::from_value(&msg.body) else {
            return;
        };
        sys.charge(CACHE_OP_CYCLES);
        match cache_msg {
            CacheMsg::Put { user, key, bytes } => {
                if let Some(binding) = self.write_allowed(&user, &msg.verify) {
                    self.entries.insert(
                        key,
                        Entry {
                            owner_taint: binding.taint,
                            bytes,
                        },
                    );
                }
            }
            CacheMsg::Get { key, reply } => {
                if let Some(entry) = self.entries.get(&key) {
                    // The hit carries the owner's taint at 3: the kernel
                    // decides whether the requester may see it, exactly
                    // like ok-dbproxy rows. A worker for the wrong user
                    // has the hit dropped and observes a plain miss.
                    sys.charge(entry.bytes.len() as u64 * 4);
                    let args = SendArgs::new().contaminate(Label::from_pairs(
                        Level::Star,
                        &[(entry.owner_taint, Level::L3)],
                    ));
                    let _ = sys.send_args(
                        reply,
                        CacheMsg::Hit {
                            key: key.clone(),
                            bytes: entry.bytes.clone(),
                        }
                        .to_value(),
                        &args,
                    );
                }
                // Untainted terminator, hit or miss (§7.5's Done).
                let _ = sys.send(reply, CacheMsg::GetDone { key }.to_value());
            }
            CacheMsg::Evict { user, key } => {
                if self.write_allowed(&user, &msg.verify).is_some() {
                    // Only the owner may evict their entry.
                    if let Some(e) = self.entries.get(&key) {
                        let owner = self.users.get(&user).expect("write_allowed checked");
                        if e.owner_taint == owner.taint {
                            self.entries.remove(&key);
                        }
                    }
                }
            }
            CacheMsg::Hit { .. } | CacheMsg::GetDone { .. } => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Spawn info for a running cache.
pub struct CacheHandle {
    /// The cache's process id.
    pub pid: ProcessId,
    /// Its worker-facing port.
    pub port: Handle,
}

/// Spawns the shared cache (idd's `CACHE_TRUSTED_ENV` port must already be
/// published — i.e. spawn after idd).
pub fn spawn_cache(kernel: &mut Kernel) -> CacheHandle {
    let pid = kernel.spawn("ok-cache", Category::Okws, Box::new(OkCache::new()));
    let port = kernel
        .global_env(CACHE_PORT_ENV)
        .and_then(|v| v.as_handle())
        .expect("cache publishes its worker port");
    CacheHandle { pid, port }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Handle::from_raw(3);
        let msgs = vec![
            CacheMsg::Put {
                user: "u".into(),
                key: "k".into(),
                bytes: vec![1].into(),
            },
            CacheMsg::Get {
                key: "k".into(),
                reply: h,
            },
            CacheMsg::Hit {
                key: "k".into(),
                bytes: vec![2].into(),
            },
            CacheMsg::GetDone { key: "k".into() },
            CacheMsg::Evict {
                user: "u".into(),
                key: "k".into(),
            },
        ];
        for m in msgs {
            assert_eq!(CacheMsg::from_value(&m.to_value()), Some(m));
        }
    }
}
