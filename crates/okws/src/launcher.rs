//! The OKWS launcher (§7.1).
//!
//! "OKWS is started by a launcher process. The launcher spawns ok-demux,
//! site-specific workers requested by the site operator, and two other
//! processes, idd and ok-dbproxy. ... the launcher grants a process-specific
//! verification handle to each process it starts. The ok-demux collects
//! these handle values from the launcher. When a worker identifies itself to
//! the ok-demux, it must provide a verification label V containing its
//! verification handle at level 0."

use asbestos_db::DbProxy;
use asbestos_kernel::{Category, Handle, Label, Level, Message, SendArgs, Service, Sys, Value};
use asbestos_store::BlockDev;

use crate::demux::{svc_declassifier_env, svc_verify_env, OkDemux, SVC_LIST_ENV};
use crate::idd::{Idd, IDD_DEMUX_VERIFY_ENV, IDD_PORT_ENV, LAUNCHER_VERIFY_ENV};
use crate::logic::WorkerLogic;
use crate::proto::OkwsMsg;
use crate::worker::{worker_port_env, Worker};

/// How a service's worker process is built.
enum WorkerKind {
    /// The standard worker machinery around a [`WorkerLogic`].
    Logic(Box<dyn FnMut() -> Box<dyn WorkerLogic> + Send>),
    /// A custom event-process service (tests use this to model workers
    /// whose *code* is compromised, §7.8). Must handle
    /// [`OkwsMsg::Activate`] itself.
    Raw(Box<dyn FnMut() -> Box<dyn asbestos_kernel::EpService> + Send>),
    /// The worker base process was already placed on its shard by the
    /// deployment assembler ([`crate::Okws::start`] on a multi-shard
    /// kernel); the launcher only provisions its verification handle and
    /// activates it.
    Placed,
}

/// One service to launch.
pub struct ServiceSpec {
    /// Service name (the first path segment of request URLs).
    pub name: String,
    /// Whether this worker is a §7.6 declassifier.
    pub declassifier: bool,
    /// Whether workers `ep_clean` scratch state per request (§7.3); the
    /// Figure 6 active-session experiment disables this.
    pub tidy: bool,
    kind: WorkerKind,
}

impl ServiceSpec {
    /// A service built by `factory`.
    pub fn new(
        name: &str,
        factory: impl FnMut() -> Box<dyn WorkerLogic> + Send + 'static,
    ) -> ServiceSpec {
        ServiceSpec {
            name: name.to_string(),
            declassifier: false,
            tidy: true,
            kind: WorkerKind::Logic(Box::new(factory)),
        }
    }

    /// A service backed by a custom event-process implementation.
    pub fn raw(
        name: &str,
        factory: impl FnMut() -> Box<dyn asbestos_kernel::EpService> + Send + 'static,
    ) -> ServiceSpec {
        ServiceSpec {
            name: name.to_string(),
            declassifier: false,
            tidy: true,
            kind: WorkerKind::Raw(Box::new(factory)),
        }
    }

    /// Marks the service as a declassifier (§7.6).
    pub fn declassifier(mut self) -> ServiceSpec {
        self.declassifier = true;
        self
    }

    /// Disables per-request cleanup (Figure 6 active-session experiment).
    pub fn untidy(mut self) -> ServiceSpec {
        self.tidy = false;
        self
    }

    /// Whether this spec's worker body was already taken by a deployment
    /// assembler ([`ServiceSpec::take_body`]) — the launcher (and the
    /// single-kernel shard placer) must activate it, not spawn it.
    pub fn is_placed(&self) -> bool {
        matches!(self.kind, WorkerKind::Placed)
    }

    /// Builds this service's worker body and marks the spec as placed —
    /// a deployment assembler (the sharded `Okws::start` path, or the
    /// cluster crate's cross-kernel deploy) calls this when it spawns
    /// worker base processes onto their shards — or kernels — itself, so
    /// the launcher knows to activate rather than spawn.
    ///
    /// # Panics
    ///
    /// Panics when called twice for one spec; check
    /// [`ServiceSpec::is_placed`] first.
    pub fn take_body(&mut self) -> Box<dyn asbestos_kernel::EpService> {
        let kind = std::mem::replace(&mut self.kind, WorkerKind::Placed);
        match kind {
            WorkerKind::Logic(mut factory) => {
                let mut worker = Worker::new(&self.name, factory());
                if !self.tidy {
                    worker = worker.untidy();
                }
                Box::new(worker)
            }
            WorkerKind::Raw(mut factory) => factory(),
            WorkerKind::Placed => unreachable!("take_body called twice for {}", self.name),
        }
    }
}

/// OKWS deployment configuration.
pub struct OkwsConfig {
    /// TCP port to serve.
    pub tcp_port: u16,
    /// Services to launch.
    pub services: Vec<ServiceSpec>,
    /// Worker-visible tables to create through ok-dbproxy (DDL).
    pub worker_tables: Vec<String>,
    /// Accounts to create: (user, password).
    pub users: Vec<(String, String)>,
    /// Whether to deploy the shared, user-isolated cache (§2).
    pub with_cache: bool,
    /// Kernel shards to run the deployment on. `1` (the default) is the
    /// paper-faithful single-engine configuration; higher counts spread
    /// netd, the launcher, and the OKWS process suite round-robin across
    /// parallel delivery engines, with the router carrying the
    /// netd ↔ demux ↔ worker traffic between shards.
    pub shards: usize,
    /// netd lanes in the multi-queue front end. `1` (the default) is the
    /// paper's single netd process; higher counts spawn one full netd
    /// instance per lane, pinned one lane per shard, with the RSS
    /// demultiplexer hashing each accepted connection to a lane so its
    /// whole event stream stays on one shard.
    pub netd_lanes: usize,
    /// The durable medium for ok-dbproxy's write-ahead log (§7.5
    /// persistence). `None` (the default) is the paper's volatile
    /// prototype; a device makes every acknowledged statement durable
    /// and enables [`crate::Okws::reboot`].
    pub db_store: Option<Box<dyn BlockDev>>,
    /// Per-port mailbox bound for the deployment's kernel. `None` (the
    /// default) leaves the kernel's own default in place — which itself
    /// honours the `ASBESTOS_PORT_QUEUE` environment variable.
    pub port_queue: Option<usize>,
    /// Arms the overload-control loop: kernel send credits with deferral
    /// and `WouldBlock` ([`asbestos_kernel::Kernel::set_backpressure`])
    /// plus netd edge shedding (the `netd.shed` deployment flag). Off by
    /// default — the paper's prototype drops silently at the queue bound.
    pub backpressure: bool,
}

impl OkwsConfig {
    /// A configuration with no services or users on the given port.
    pub fn new(tcp_port: u16) -> OkwsConfig {
        OkwsConfig {
            tcp_port,
            services: Vec::new(),
            worker_tables: Vec::new(),
            users: Vec::new(),
            with_cache: false,
            shards: 1,
            netd_lanes: 1,
            db_store: None,
            port_queue: None,
            backpressure: false,
        }
    }

    /// Bounds every port mailbox at `limit` messages.
    pub fn port_queue(mut self, limit: usize) -> OkwsConfig {
        self.port_queue = Some(limit);
        self
    }

    /// Arms overload control: kernel send credits plus netd edge
    /// shedding. See [`OkwsConfig::backpressure`].
    pub fn with_backpressure(mut self) -> OkwsConfig {
        self.backpressure = true;
        self
    }

    /// Sets the kernel shard count this deployment targets.
    pub fn sharded(mut self, shards: usize) -> OkwsConfig {
        self.shards = shards;
        self
    }

    /// Sets the netd lane count of the multi-queue front end.
    pub fn lanes(mut self, lanes: usize) -> OkwsConfig {
        self.netd_lanes = lanes;
        self
    }

    /// Backs ok-dbproxy with a durable store on `dev`: every committed
    /// statement is redo-logged before acknowledgement, and the same
    /// device handed to [`crate::Okws::reboot`] recovers the deployment
    /// after a crash or clean shutdown.
    pub fn durable(mut self, dev: Box<dyn BlockDev>) -> OkwsConfig {
        self.db_store = Some(dev);
        self
    }
}

/// The launcher process.
pub struct Launcher {
    config: Option<OkwsConfig>,
}

impl Launcher {
    /// Creates a launcher that will deploy `config` on start.
    pub fn new(config: OkwsConfig) -> Launcher {
        Launcher {
            config: Some(config),
        }
    }
}

impl Service for Launcher {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let mut config = self.config.take().expect("launcher starts once");

        // Verification handles: one for the launcher itself (idd checks it
        // on account/DDL management), one for ok-demux (idd checks it on
        // Login), one per worker (ok-demux checks registrations).
        let launcher_verify = sys.new_handle();
        sys.publish_env(LAUNCHER_VERIFY_ENV, Value::Handle(launcher_verify));
        let demux_verify = sys.new_handle();
        sys.publish_env(IDD_DEMUX_VERIFY_ENV, Value::Handle(demux_verify));
        sys.publish_env("okws.demux.verify", Value::Handle(demux_verify));

        let mut names = Vec::new();
        let mut worker_verifies = Vec::new();
        for spec in &config.services {
            let wv = sys.new_handle();
            sys.publish_env(&svc_verify_env(&spec.name), Value::Handle(wv));
            sys.publish_env(
                &svc_declassifier_env(&spec.name),
                Value::Bool(spec.declassifier),
            );
            names.push(Value::Str(spec.name.clone()));
            worker_verifies.push(wv);
        }
        sys.publish_env(SVC_LIST_ENV, Value::List(names));

        // System processes, in dependency order: idd publishes the trusted
        // ports ok-dbproxy (and optionally ok-cache) greet; ok-demux needs
        // all of them.
        sys.spawn("idd", Category::Okdb, Box::new(Idd::new()))
            .expect("launcher runs outside event processes");
        let proxy = match config.db_store.take() {
            // §7.5 durability: the proxy recovers (snapshot + committed
            // WAL prefix) before serving its first message.
            Some(dev) => DbProxy::with_store(dev),
            None => DbProxy::new(),
        };
        sys.spawn("ok-dbproxy", Category::Okdb, Box::new(proxy))
            .expect("launcher runs outside event processes");
        if config.with_cache {
            sys.spawn(
                "ok-cache",
                Category::Okws,
                Box::new(crate::cache::OkCache::new()),
            )
            .expect("launcher runs outside event processes");
        }
        sys.spawn(
            "ok-demux",
            Category::Okws,
            Box::new(OkDemux::new(config.tcp_port)),
        )
        .expect("launcher runs outside event processes");

        // Grant ok-demux its verification handle at ⋆: it proves itself to
        // idd with V(dV) = 0, and holding ⋆ (rather than the fragile
        // mandatory level 0, which decays on any ordinary input, §5.4)
        // keeps the credential alive across netd traffic.
        let demux_control = sys
            .env(crate::demux::DEMUX_PORT_ENV)
            .and_then(|v| v.as_handle())
            .expect("ok-demux publishes its control port");
        let _ = sys.send_args(
            demux_control,
            Value::Str("verification-grant".into()),
            &SendArgs::new().grant(Label::from_pairs(Level::L3, &[(demux_verify, Level::Star)])),
        );

        // Workers: spawn (unless the deployment assembler already placed
        // the base process on its shard), then activate — the activation
        // event process registers the worker with ok-demux using its
        // verification handle.
        for (spec, wv) in config.services.iter_mut().zip(&worker_verifies) {
            if !matches!(spec.kind, WorkerKind::Placed) {
                let body = spec.take_body();
                sys.spawn_ep_service(&format!("worker-{}", spec.name), Category::Okws, body)
                    .expect("launcher runs outside event processes");
            }
            let port = sys
                .env(&worker_port_env(&spec.name))
                .and_then(|v| v.as_handle())
                .expect("the worker's base start published its port");
            let _ = sys.send_args(
                port,
                OkwsMsg::Activate {
                    service: spec.name.clone(),
                    verify: *wv,
                }
                .to_value(),
                &SendArgs::new().grant(Label::from_pairs(Level::L3, &[(*wv, Level::Star)])),
            );
        }

        // Worker-visible tables and accounts, all proven with the
        // launcher's verification handle.
        let idd_port = sys
            .env(IDD_PORT_ENV)
            .and_then(|v| v.as_handle())
            .expect("idd publishes its login port");
        let launcher_v = Label::from_pairs(Level::L3, &[(launcher_verify, Level::L0)]);
        for ddl in &config.worker_tables {
            let _ = sys.send_args(
                idd_port,
                Value::List(vec![
                    Value::Str("worker-ddl".into()),
                    Value::Str(ddl.clone()),
                ]),
                &SendArgs::new().verify(launcher_v.clone()),
            );
        }
        for (user, password) in &config.users {
            let _ = sys.send_args(
                idd_port,
                OkwsMsg::AddUser {
                    user: user.clone(),
                    password: password.clone(),
                }
                .to_value(),
                &SendArgs::new().verify(launcher_v.clone()),
            );
        }
    }

    fn on_message(&mut self, _sys: &mut Sys<'_>, _msg: &Message) {
        // §7.1: "a more mature version of launcher could restart dead
        // processes" — the prototype launcher, like the paper's, does not.
    }
}

/// The demux control-port grant message carries no handle values in its
/// body; this helper exists so tests can assert the launcher granted the
/// right verification handle.
pub fn demux_verify_handle(kernel: &asbestos_kernel::Kernel) -> Option<Handle> {
    kernel
        .global_env(IDD_DEMUX_VERIFY_ENV)
        .and_then(|v| v.as_handle())
}
