//! The generic OKWS worker: event-process machinery around a
//! [`WorkerLogic`] (§7.2 steps 7–9, §7.3).
//!
//! Every user session is one event process. Its state lives entirely in
//! event-process memory (the kernel isolates it); the `Worker` itself holds
//! only immutable configuration, which is why [`EpService::on_event`] can
//! take `&self`.
//!
//! ## Event-process memory layout
//!
//! | Address | Contents | Lifetime |
//! |---|---|---|
//! | `0x40000` | session page: state tag, `uC`/`uW`/credential handles, user name, and the logic's session area from `+0x100` | persists (the Figure 6 "cached session" page) |
//! | `0x50000` | raw request bytes | cleaned per request |
//! | `0x60000` | accumulated DB rows | cleaned per request |
//! | `0x70000` | emulated stack/heap scratch | cleaned per request |
//!
//! A tidy worker calls `ep_clean` on the three scratch regions before
//! yielding, leaving exactly one private page per cached session; the
//! Figure 6 "active session" experiment disables the cleanup.

use asbestos_db::{DbMsg, SqlValue};
use asbestos_kernel::{EpService, Handle, Label, Level, Message, SendArgs, Sys, Value};
use asbestos_net::{http, parse_request, HttpRequest, NetMsg};

use crate::logic::{Action, SessionStore, WorkerLogic};
use crate::proto::OkwsMsg;

/// Session page base address.
pub const SESSION_PAGE: u64 = 0x40000;
/// Request buffer base address (scratch).
pub const REQUEST_BUF: u64 = 0x50000;
/// DB row buffer base address (scratch).
pub const ROWS_BUF: u64 = 0x60000;
/// Emulated stack/heap scratch base address.
pub const SCRATCH: u64 = 0x70000;
/// Size of each scratch region in bytes (16 pages).
pub const SCRATCH_REGION: usize = 16 * 4096;
/// Offset of the logic's session area within the session page.
pub const SESSION_DATA_OFF: u64 = 0x100;
/// Capacity offered to logic session storage.
pub const SESSION_CAPACITY: usize = 16 * 4096;

// Offsets within the session page.
const OFF_STATE: u64 = 0x00;
const OFF_UC: u64 = 0x08;
const OFF_UW: u64 = 0x10;
const OFF_TAINT: u64 = 0x18;
const OFF_GRANT: u64 = 0x20;
const OFF_USER_LEN: u64 = 0x28;
const OFF_USER: u64 = 0x30; // up to 64 bytes
const OFF_REQ_LEN: u64 = 0x78;
// Pending-connection queue: concurrent connections to one session are
// served in arrival order (count at 0x80, then up to 14 uC values).
const OFF_PENDING_COUNT: u64 = 0x80;
const OFF_PENDING: u64 = 0x88;
const PENDING_MAX: u64 = 14;

// State-machine tags.
const ST_IDLE: u64 = 0;
const ST_AWAIT_REQUEST: u64 = 1;
const ST_AWAIT_DB_ROWS: u64 = 2;
const ST_AWAIT_DB_EXEC: u64 = 3;
const ST_AWAIT_CACHE: u64 = 4;
/// Logged out, waiting for ok-demux's [`OkwsMsg::SessionEndR`] before
/// `ep_exit`: handoffs ok-demux sent before it dropped the session-table
/// entry are still in flight on `uW`, and exiting under them would strand
/// their connections (dropped `NoPort`, the client never sees a close).
/// While draining, every arriving or queued connection is shed.
const ST_DRAINING: u64 = 5;

/// Environment key prefix for worker service ports.
pub fn worker_port_env(service: &str) -> String {
    format!("okws.worker.{service}.port")
}

/// An OKWS worker process.
pub struct Worker {
    service: String,
    logic: Box<dyn WorkerLogic>,
    /// Whether to `ep_clean` scratch state after each request (§7.3); the
    /// Figure 6 active-session experiment sets this to false.
    tidy: bool,
    /// Emulated stack/temporary pages touched per request (§9.1 observed
    /// 8 active pages: stack, message queue, heap, globals).
    touch_pages: usize,
}

impl Worker {
    /// Creates a worker for `service` running `logic`.
    pub fn new(service: &str, logic: Box<dyn WorkerLogic>) -> Worker {
        Worker {
            service: service.to_string(),
            logic,
            tidy: true,
            // 2 emulated stack pages + 5 heap/global pages, matching the
            // §9.1 accounting of an active session's scratch state.
            touch_pages: 7,
        }
    }

    /// Disables per-request cleanup (Figure 6's worst-case experiment:
    /// "modified the worker so that it does not ever unmap memory, call
    /// ep_clean or call ep_exit").
    pub fn untidy(mut self) -> Worker {
        self.tidy = false;
        self
    }

    // ------------------------------------------------------------------
    // Memory helpers.
    // ------------------------------------------------------------------

    fn read_u64(sys: &Sys<'_>, addr: u64) -> u64 {
        sys.mem_read_u64(addr)
            .expect("worker memory reads stay in range")
    }

    fn write_u64(sys: &mut Sys<'_>, addr: u64, v: u64) {
        sys.mem_write_u64(addr, v)
            .expect("worker memory writes stay in range");
    }

    fn read_handle(sys: &Sys<'_>, addr: u64) -> Handle {
        Handle::from_raw(Self::read_u64(sys, addr))
    }

    fn store_user(sys: &mut Sys<'_>, user: &str) {
        let bytes = &user.as_bytes()[..user.len().min(64)];
        Self::write_u64(sys, OFF_USER_LEN + SESSION_PAGE, bytes.len() as u64);
        if !bytes.is_empty() {
            sys.mem_write(OFF_USER + SESSION_PAGE, bytes)
                .expect("user name fits the session page");
        }
    }

    fn load_user(sys: &Sys<'_>) -> String {
        let len = Self::read_u64(sys, OFF_USER_LEN + SESSION_PAGE) as usize;
        if len == 0 {
            return String::new();
        }
        let bytes = sys
            .mem_read(OFF_USER + SESSION_PAGE, len.min(64))
            .expect("user name fits the session page");
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn store_request(sys: &mut Sys<'_>, bytes: &[u8]) {
        let take = bytes.len().min(SCRATCH_REGION);
        Self::write_u64(sys, OFF_REQ_LEN + SESSION_PAGE, take as u64);
        if take > 0 {
            sys.mem_write(REQUEST_BUF, &bytes[..take])
                .expect("request fits the request buffer");
        }
    }

    fn load_request(sys: &Sys<'_>) -> Option<HttpRequest> {
        let len = Self::read_u64(sys, OFF_REQ_LEN + SESSION_PAGE) as usize;
        if len == 0 {
            return None;
        }
        let bytes = sys
            .mem_read(REQUEST_BUF, len)
            .expect("stored request readable");
        parse_request(&bytes).ok()
    }

    /// Emulates the stack/heap writes a real worker scatters across pages
    /// while processing a request (§6.2, §9.1).
    fn touch_scratch(&self, sys: &mut Sys<'_>) {
        for page in 0..self.touch_pages {
            sys.mem_write(SCRATCH + (page as u64) * 4096, &[0x5a]).ok();
        }
    }

    fn cleanup(&self, sys: &mut Sys<'_>) {
        if self.tidy {
            // §7.3: "event processes should typically call ep_clean before
            // yielding to discard all pages modified since the checkpoint
            // that do not hold session data; this will typically include
            // the stack."
            let _ = sys.ep_clean(REQUEST_BUF, SCRATCH_REGION);
            let _ = sys.ep_clean(ROWS_BUF, SCRATCH_REGION);
            let _ = sys.ep_clean(SCRATCH, SCRATCH_REGION);
        }
    }

    // ------------------------------------------------------------------
    // Row buffer encoding (rows accumulated between DbQuery and Done).
    // ------------------------------------------------------------------

    fn rows_reset(sys: &mut Sys<'_>) {
        Self::write_u64(sys, ROWS_BUF, 0); // count
        Self::write_u64(sys, ROWS_BUF + 8, 16); // write offset
    }

    fn rows_append(sys: &mut Sys<'_>, values: &[SqlValue]) {
        let count = Self::read_u64(sys, ROWS_BUF);
        let mut off = Self::read_u64(sys, ROWS_BUF + 8);
        let encoded = encode_row(values);
        if (off as usize + encoded.len()) > SCRATCH_REGION {
            return; // row buffer full: drop excess rows
        }
        sys.mem_write(ROWS_BUF + off, &encoded)
            .expect("bounds checked above");
        off += encoded.len() as u64;
        Self::write_u64(sys, ROWS_BUF, count + 1);
        Self::write_u64(sys, ROWS_BUF + 8, off);
    }

    fn rows_load(sys: &Sys<'_>) -> Vec<Vec<SqlValue>> {
        let count = Self::read_u64(sys, ROWS_BUF);
        let end = Self::read_u64(sys, ROWS_BUF + 8);
        if count == 0 {
            return Vec::new();
        }
        let bytes = sys
            .mem_read(ROWS_BUF + 16, (end - 16) as usize)
            .expect("row buffer readable");
        decode_rows(&bytes, count as usize)
    }

    // ------------------------------------------------------------------
    // Protocol steps.
    // ------------------------------------------------------------------

    fn begin_connection(
        &self,
        sys: &mut Sys<'_>,
        conn: Handle,
        user: &str,
        taint: Handle,
        grant: Handle,
    ) {
        // A session event process serves one request at a time; connections
        // arriving mid-request wait in the pending queue (served from
        // `respond`). Beyond the queue bound — or after logout, while the
        // session drains — the connection is shed: the client sees a drop,
        // never another user's data.
        let state = Self::read_u64(sys, SESSION_PAGE + OFF_STATE);
        if state == ST_DRAINING {
            Self::shed_conn(sys, conn);
            return;
        }
        if state != ST_IDLE {
            let count = Self::read_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT);
            if count < PENDING_MAX {
                Self::write_u64(sys, SESSION_PAGE + OFF_PENDING + 8 * count, conn.raw());
                Self::write_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT, count + 1);
            } else {
                Self::shed_conn(sys, conn);
            }
            return;
        }
        Self::write_u64(sys, SESSION_PAGE + OFF_UC, conn.raw());
        Self::write_u64(sys, SESSION_PAGE + OFF_TAINT, taint.raw());
        Self::write_u64(sys, SESSION_PAGE + OFF_GRANT, grant.raw());
        Self::store_user(sys, user);

        let uw = if sys.is_new_ep() {
            // §7.2 step 8 / §7.3: make the session port and register it
            // with ok-demux (granted at ⋆ so the session table can route
            // future connections straight to this event process).
            let uw = sys.new_port(Label::top());
            Self::write_u64(sys, SESSION_PAGE + OFF_UW, uw.raw());
            let demux = sys
                .env("okws.demux.port")
                .and_then(|v| v.as_handle())
                .expect("ok-demux publishes its control port");
            let _ = sys.send_args(
                demux,
                OkwsMsg::SessionNew {
                    user: user.to_string(),
                    service: self.service.clone(),
                    port: uw,
                }
                .to_value(),
                &SendArgs::new().grant(star(uw)),
            );
            uw
        } else {
            Self::read_handle(sys, SESSION_PAGE + OFF_UW)
        };

        // §7.2 step 8: read the user's request via uC, replies to uW
        // (granting netd ⋆ for uW so its tainted replies can arrive).
        let _ = sys.send_args(
            conn,
            NetMsg::Read {
                max: SCRATCH_REGION as u64,
                reply: uw,
                peek: false,
            }
            .to_value(),
            &SendArgs::new().grant(star(uw)),
        );
        Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_AWAIT_REQUEST);
        self.touch_scratch(sys);
    }

    /// Closes `conn` unserved: the client observes the closed-empty shed
    /// signature and retries. Best-effort like the sends in `respond`;
    /// the uC ⋆ is released either way so the send label does not grow
    /// per shed connection.
    fn shed_conn(sys: &mut Sys<'_>, conn: Handle) {
        let _ = sys.send(conn, NetMsg::Close.to_value());
        sys.self_contaminate(&Label::from_pairs(Level::Star, &[(conn, Level::L1)]));
    }

    /// Writes the HTTP response on the current connection, closes it, and
    /// releases its uC ⋆. State-machine continuation is the caller's.
    fn send_response(&self, sys: &mut Sys<'_>, status: u16, body: &[u8]) {
        let conn = Self::read_handle(sys, SESSION_PAGE + OFF_UC);
        let reason = if status == 200 { "OK" } else { "Error" };
        let response = http::build_response(status, reason, body);
        // Both sends are best-effort: with backpressure armed the kernel
        // can refuse either with WouldBlock (this session outran its own
        // send credit). An event handler must never block or spin waiting
        // for credit, so a refused response body is simply dropped — the
        // Close still goes out on its own credit, and the client then
        // observes the closed-empty shed signature and retries, the same
        // degradation path netd's edge shedding produces.
        let _ = sys.send(conn, NetMsg::Write { bytes: response }.to_value());
        let _ = sys.send(conn, NetMsg::Close.to_value());
        // Release the connection capability (§9.3): cached sessions span
        // many connections, and without this the event process's send label
        // would grow by one uC ⋆ per connection served.
        sys.self_contaminate(&Label::from_pairs(Level::Star, &[(conn, Level::L1)]));
    }

    fn respond(&self, sys: &mut Sys<'_>, status: u16, body: &[u8]) {
        self.send_response(sys, status, body);
        Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_IDLE);
        self.cleanup(sys);
        // Serve the next queued connection, if any arrived mid-request.
        let count = Self::read_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT);
        if count > 0 {
            let next = Handle::from_raw(Self::read_u64(sys, SESSION_PAGE + OFF_PENDING));
            for i in 1..count {
                let v = Self::read_u64(sys, SESSION_PAGE + OFF_PENDING + 8 * i);
                Self::write_u64(sys, SESSION_PAGE + OFF_PENDING + 8 * (i - 1), v);
            }
            Self::write_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT, count - 1);
            let user = Self::load_user(sys);
            let taint = Self::read_handle(sys, SESSION_PAGE + OFF_TAINT);
            let grant = Self::read_handle(sys, SESSION_PAGE + OFF_GRANT);
            self.begin_connection(sys, next, &user, taint, grant);
        }
    }

    fn run_action(&self, sys: &mut Sys<'_>, action: Action) {
        match action {
            Action::Respond { body, status } => self.respond(sys, status, &body),
            Action::RespondAndLogout { body } => {
                // Answer the logout itself, then shed (rather than serve)
                // every queued connection: the session is over, and each
                // shed client retries into a fresh login.
                self.send_response(sys, 200, &body);
                self.cleanup(sys);
                let count = Self::read_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT);
                for i in 0..count {
                    let queued =
                        Handle::from_raw(Self::read_u64(sys, SESSION_PAGE + OFF_PENDING + 8 * i));
                    Self::shed_conn(sys, queued);
                }
                Self::write_u64(sys, SESSION_PAGE + OFF_PENDING_COUNT, 0);
                Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_DRAINING);
                let user = Self::load_user(sys);
                if let Some(demux) = sys.env("okws.demux.port").and_then(|v| v.as_handle()) {
                    let _ = sys.send(
                        demux,
                        OkwsMsg::SessionEnd {
                            user,
                            service: self.service.clone(),
                        }
                        .to_value(),
                    );
                }
                // §7.3: "u's worker event processes call ep_exit" — but
                // only once ok-demux acks SessionEndR (see ST_DRAINING):
                // exiting now would strand handoffs already in flight.
            }
            Action::DbQuery { sql, params } => {
                let db = sys
                    .env(asbestos_db::DB_PORT_ENV)
                    .and_then(|v| v.as_handle())
                    .expect("ok-dbproxy publishes its port");
                let uw = Self::read_handle(sys, SESSION_PAGE + OFF_UW);
                Self::rows_reset(sys);
                Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_AWAIT_DB_ROWS);
                // Grant the proxy ⋆ for uW so the (tainted) rows can land.
                let _ = sys.send_args(
                    db,
                    DbMsg::Query {
                        sql,
                        params,
                        reply: uw,
                    }
                    .to_value(),
                    &SendArgs::new().grant(star(uw)),
                );
            }
            Action::DbExec { sql, params } => {
                let db = sys
                    .env(asbestos_db::DB_PORT_ENV)
                    .and_then(|v| v.as_handle())
                    .expect("ok-dbproxy publishes its port");
                let uw = Self::read_handle(sys, SESSION_PAGE + OFF_UW);
                let user = Self::load_user(sys);
                let v = Self::credential_label(sys);
                Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_AWAIT_DB_EXEC);
                let _ = sys.send_args(
                    db,
                    DbMsg::Exec {
                        user,
                        sql,
                        params,
                        reply: Some(uw),
                    }
                    .to_value(),
                    &SendArgs::new().verify(v).grant(star(uw)),
                );
            }
            Action::ChangePassword { new_password } => {
                let Some(idd) = sys
                    .env(crate::idd::IDD_PORT_ENV)
                    .and_then(|v| v.as_handle())
                else {
                    self.respond(sys, 503, b"idd unavailable");
                    return;
                };
                let uw = Self::read_handle(sys, SESSION_PAGE + OFF_UW);
                let user = Self::load_user(sys);
                let v = Self::credential_label(sys);
                // idd replies with an ExecR-shaped outcome to uW; the grant
                // lets idd hand our reply port to ok-dbproxy.
                Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_AWAIT_DB_EXEC);
                let _ = sys.send_args(
                    idd,
                    OkwsMsg::ChangePassword {
                        user,
                        new_password,
                        reply: uw,
                    }
                    .to_value(),
                    &SendArgs::new().verify(v).grant(star(uw)),
                );
            }
            Action::CacheGet { key } => {
                let Some(cache) = sys
                    .env(crate::cache::CACHE_PORT_ENV)
                    .and_then(|v| v.as_handle())
                else {
                    self.respond(sys, 503, b"cache not deployed");
                    return;
                };
                let uw = Self::read_handle(sys, SESSION_PAGE + OFF_UW);
                // The hit buffer reuses the DB row scratch region: mark "no
                // hit yet"; a (deliverable) Hit fills it before GetDone.
                Self::write_u64(sys, ROWS_BUF, 0);
                Self::write_u64(sys, SESSION_PAGE + OFF_STATE, ST_AWAIT_CACHE);
                let _ = sys.send_args(
                    cache,
                    crate::cache::CacheMsg::Get { key, reply: uw }.to_value(),
                    &SendArgs::new().grant(star(uw)),
                );
            }
            Action::CachePutAndRespond { key, bytes, body } => {
                if let Some(cache) = sys
                    .env(crate::cache::CACHE_PORT_ENV)
                    .and_then(|v| v.as_handle())
                {
                    let user = Self::load_user(sys);
                    let v = Self::credential_label(sys);
                    let _ = sys.send_args(
                        cache,
                        crate::cache::CacheMsg::Put {
                            user,
                            key,
                            bytes: bytes.into(),
                        }
                        .to_value(),
                        &SendArgs::new().verify(v),
                    );
                }
                self.respond(sys, 200, &body);
            }
        }
    }

    /// The §7.5 credential label: `V = {uT <own level>, uG 0, 2}`. A
    /// declassifier holds uT at ⋆ and proves it the same way (§7.6).
    fn credential_label(sys: &Sys<'_>) -> Label {
        let taint = Self::read_handle(sys, SESSION_PAGE + OFF_TAINT);
        let grant = Self::read_handle(sys, SESSION_PAGE + OFF_GRANT);
        let my_taint_level = sys.send_label().get(taint);
        Label::from_pairs(Level::L2, &[(taint, my_taint_level), (grant, Level::L0)])
    }
}

impl EpService for Worker {
    fn on_base_start(&mut self, sys: &mut Sys<'_>) {
        // The public service port. Open: possession of a connection
        // capability (uC ⋆), not port secrecy, is what protects users.
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(&worker_port_env(&self.service), Value::Handle(port));
    }

    fn on_event(&self, sys: &mut Sys<'_>, msg: &Message) {
        sys.charge(15_000); // dispatch overhead
                            // Launcher activation: register with ok-demux, then discard this
                            // throwaway event process (§7.1).
        if let Some(OkwsMsg::Activate { service, verify }) = OkwsMsg::from_value(&msg.body) {
            if service == self.service {
                let demux = sys
                    .env("okws.demux.reg")
                    .and_then(|v| v.as_handle())
                    .expect("ok-demux publishes its registration port");
                let port = sys
                    .env(&worker_port_env(&self.service))
                    .and_then(|v| v.as_handle())
                    .expect("our base start published the service port");
                let v = Label::from_pairs(Level::L3, &[(verify, Level::L0)]);
                let _ = sys.send_args(
                    demux,
                    OkwsMsg::Register {
                        service: self.service.clone(),
                        port,
                    }
                    .to_value(),
                    &SendArgs::new().verify(v),
                );
            }
            let _ = sys.ep_exit();
            return;
        }

        if let Some(OkwsMsg::ConnHandoff {
            conn,
            user,
            taint,
            grant,
        }) = OkwsMsg::from_value(&msg.body)
        {
            self.begin_connection(sys, conn, &user, taint, grant);
            return;
        }

        if OkwsMsg::from_value(&msg.body) == Some(OkwsMsg::SessionEndR) {
            // ok-demux dropped our session entry; every handoff it sent
            // beforehand has been shed above (same per-port FIFO), so the
            // drain is complete (§7.3: "u's worker event processes call
            // ep_exit").
            if Self::read_u64(sys, SESSION_PAGE + OFF_STATE) == ST_DRAINING {
                let _ = sys.ep_exit();
            }
            return;
        }

        let state = Self::read_u64(sys, SESSION_PAGE + OFF_STATE);
        match (
            state,
            NetMsg::from_value(&msg.body),
            DbMsg::from_value(&msg.body),
        ) {
            (ST_AWAIT_REQUEST, Some(NetMsg::ReadR { bytes }), _) => {
                Self::store_request(sys, &bytes);
                let Some(req) = Self::load_request(sys) else {
                    self.respond(sys, 400, b"bad request");
                    return;
                };
                sys.charge(self.logic.request_cycles());
                let action = {
                    let mut store = EpSessionStore { sys };
                    self.logic.on_request(&mut store, &req)
                };
                self.run_action(sys, action);
            }
            (ST_AWAIT_DB_ROWS, _, Some(DbMsg::Row { values })) => {
                Self::rows_append(sys, &values);
            }
            (ST_AWAIT_DB_ROWS, _, Some(DbMsg::Done)) => {
                let rows = Self::rows_load(sys);
                let Some(req) = Self::load_request(sys) else {
                    self.respond(sys, 500, b"lost request");
                    return;
                };
                let action = {
                    let mut store = EpSessionStore { sys };
                    self.logic.on_db_rows(&mut store, &req, &rows)
                };
                self.run_action(sys, action);
            }
            (ST_AWAIT_DB_EXEC, _, Some(DbMsg::ExecR { ok, affected })) => {
                let Some(req) = Self::load_request(sys) else {
                    self.respond(sys, 500, b"lost request");
                    return;
                };
                let action = {
                    let mut store = EpSessionStore { sys };
                    self.logic.on_db_exec(&mut store, &req, ok, affected)
                };
                self.run_action(sys, action);
            }
            (ST_AWAIT_CACHE, _, _) => {
                match crate::cache::CacheMsg::from_value(&msg.body) {
                    Some(crate::cache::CacheMsg::Hit { bytes, .. }) => {
                        // Buffer the (deliverable) hit until the terminator.
                        let take = bytes.len().min(SCRATCH_REGION - 16);
                        Self::write_u64(sys, ROWS_BUF, 1);
                        Self::write_u64(sys, ROWS_BUF + 8, take as u64);
                        if take > 0 {
                            sys.mem_write(ROWS_BUF + 16, &bytes[..take])
                                .expect("bounded above");
                        }
                    }
                    Some(crate::cache::CacheMsg::GetDone { key }) => {
                        let bytes = if Self::read_u64(sys, ROWS_BUF) == 1 {
                            let len = Self::read_u64(sys, ROWS_BUF + 8) as usize;
                            Some(sys.mem_read(ROWS_BUF + 16, len).unwrap_or_default())
                        } else {
                            None
                        };
                        let Some(req) = Self::load_request(sys) else {
                            self.respond(sys, 500, b"lost request");
                            return;
                        };
                        let action = {
                            let mut store = EpSessionStore { sys };
                            self.logic.on_cache(&mut store, &req, &key, bytes)
                        };
                        self.run_action(sys, action);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// [`SessionStore`] backed by the event process's session page region.
struct EpSessionStore<'a, 'k> {
    sys: &'a mut Sys<'k>,
}

impl SessionStore for EpSessionStore<'_, '_> {
    fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        assert!(
            offset as usize + len <= SESSION_CAPACITY,
            "session read out of range"
        );
        self.sys
            .mem_read(SESSION_PAGE + SESSION_DATA_OFF + offset, len)
            .expect("bounds asserted above")
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        assert!(
            offset as usize + data.len() <= SESSION_CAPACITY,
            "session write out of range"
        );
        self.sys
            .mem_write(SESSION_PAGE + SESSION_DATA_OFF + offset, data)
            .expect("bounds asserted above");
    }

    fn capacity(&self) -> usize {
        SESSION_CAPACITY
    }
}

fn star(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

// ---------------------------------------------------------------------
// Row serialization for the ROWS_BUF region.
// ---------------------------------------------------------------------

fn encode_row(values: &[SqlValue]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        match v {
            SqlValue::Null => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            SqlValue::Int(i) => {
                out.push(1);
                out.extend_from_slice(&8u32.to_le_bytes());
                out.extend_from_slice(&i.to_le_bytes());
            }
            SqlValue::Text(t) => {
                out.push(2);
                out.extend_from_slice(&(t.len() as u32).to_le_bytes());
                out.extend_from_slice(t.as_bytes());
            }
            SqlValue::Blob(b) => {
                out.push(3);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

fn decode_rows(mut bytes: &[u8], count: usize) -> Vec<Vec<SqlValue>> {
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let Some((row, rest)) = decode_row(bytes) else {
            break;
        };
        rows.push(row);
        bytes = rest;
    }
    rows
}

fn decode_row(bytes: &[u8]) -> Option<(Vec<SqlValue>, &[u8])> {
    if bytes.len() < 4 {
        return None;
    }
    let ncells = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let mut rest = &bytes[4..];
    let mut row = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        if rest.len() < 5 {
            return None;
        }
        let tag = rest[0];
        let len = u32::from_le_bytes(rest[1..5].try_into().ok()?) as usize;
        rest = &rest[5..];
        if rest.len() < len {
            return None;
        }
        let payload = &rest[..len];
        rest = &rest[len..];
        row.push(match tag {
            0 => SqlValue::Null,
            1 => SqlValue::Int(i64::from_le_bytes(payload.try_into().ok()?)),
            2 => SqlValue::Text(String::from_utf8_lossy(payload).into_owned()),
            3 => SqlValue::Blob(payload.to_vec()),
            _ => return None,
        });
    }
    Some((row, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_codec_roundtrip() {
        let rows = vec![
            vec![SqlValue::Int(-3), SqlValue::Text("hi".into())],
            vec![SqlValue::Null, SqlValue::Blob(vec![1, 2, 3])],
        ];
        let mut bytes = Vec::new();
        for r in &rows {
            bytes.extend_from_slice(&encode_row(r));
        }
        assert_eq!(decode_rows(&bytes, 2), rows);
    }

    #[test]
    fn decode_tolerates_truncation() {
        let row = encode_row(&[SqlValue::Text("abcdef".into())]);
        assert_eq!(decode_rows(&row[..3], 1), Vec::<Vec<SqlValue>>::new());
        assert_eq!(decode_rows(&row[..row.len() - 1], 1).len(), 0);
    }
}
