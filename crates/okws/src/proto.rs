//! OKWS-internal protocol messages (§7.1–§7.4).

use asbestos_kernel::{Handle, Value};

/// A message between OKWS components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OkwsMsg {
    /// Launcher → worker base port: carries the worker's verification
    /// handle at level 0 (via `D_S`); the receiving event process registers
    /// with ok-demux and exits.
    Activate {
        /// The service name this worker provides.
        service: String,
        /// The worker's launcher-issued verification handle.
        verify: Handle,
    },
    /// Worker → ok-demux: service registration, proven with
    /// `V(verify handle) = 0` (§7.1).
    Register {
        /// Service name.
        service: String,
        /// The worker's public service port.
        port: Handle,
    },
    /// ok-demux → idd: check a username/password pair (§7.2 step 3).
    Login {
        /// Username.
        user: String,
        /// Password.
        password: String,
        /// Reply port.
        reply: Handle,
    },
    /// idd → ok-demux: login verdict (§7.2 step 4). On success the message
    /// grants `uT ⋆` and `uG ⋆`.
    LoginR {
        /// Whether the credentials checked out.
        ok: bool,
        /// Username echoed back.
        user: String,
        /// The user's taint handle (valid when `ok`).
        taint: Option<Handle>,
        /// The user's grant handle (valid when `ok`).
        grant: Option<Handle>,
    },
    /// Launcher/admin → idd: create an account.
    AddUser {
        /// Username.
        user: String,
        /// Password.
        password: String,
    },
    /// Worker → idd: change a user's password. The §7 intro names this as
    /// one of the three standard workers. The sender must prove it speaks
    /// for the user with `V(uG) ≤ 0`; idd replies with a
    /// [`asbestos_db::DbMsg::ExecR`]-shaped outcome to `reply`.
    ChangePassword {
        /// Username.
        user: String,
        /// The replacement password.
        new_password: String,
        /// Reply port (granted to idd at ⋆ alongside this message).
        reply: Handle,
    },
    /// ok-demux → worker (base port for new sessions, session port uW for
    /// existing ones): hand off a connection (§7.2 step 6). Grants carried
    /// by the send's optional labels; handle *values* ride in the body so
    /// the worker can name them in later verification labels.
    ConnHandoff {
        /// The connection port `uC` (granted at ⋆).
        conn: Handle,
        /// Username of the authenticated user.
        user: String,
        /// The user's taint handle value.
        taint: Handle,
        /// The user's grant handle value.
        grant: Handle,
    },
    /// Worker event process → ok-demux: a new session port uW exists for
    /// `(user, service)` (§7.3); grants `uW ⋆`.
    SessionNew {
        /// Username.
        user: String,
        /// Service name.
        service: String,
        /// The session port `uW`.
        port: Handle,
    },
    /// Worker event process → ok-demux: the session ended (logout);
    /// ok-demux drops its table entry (§7.3).
    SessionEnd {
        /// Username.
        user: String,
        /// Service name.
        service: String,
    },
    /// ok-demux → worker event process (on the ending session's `uW`):
    /// the session-table entry is gone. Connections ok-demux handed off
    /// before processing the `SessionEnd` travel the same per-port FIFO
    /// as this ack, so once it arrives no further handoffs can target
    /// the port and the event process may safely `ep_exit`.
    SessionEndR,
}

impl OkwsMsg {
    /// Encodes to a [`Value`] payload.
    pub fn to_value(&self) -> Value {
        match self {
            OkwsMsg::Activate { service, verify } => Value::List(vec![
                Value::Str("activate".into()),
                Value::Str(service.clone()),
                Value::Handle(*verify),
            ]),
            OkwsMsg::Register { service, port } => Value::List(vec![
                Value::Str("register".into()),
                Value::Str(service.clone()),
                Value::Handle(*port),
            ]),
            OkwsMsg::Login {
                user,
                password,
                reply,
            } => Value::List(vec![
                Value::Str("login".into()),
                Value::Str(user.clone()),
                Value::Str(password.clone()),
                Value::Handle(*reply),
            ]),
            OkwsMsg::LoginR {
                ok,
                user,
                taint,
                grant,
            } => Value::List(vec![
                Value::Str("login-r".into()),
                Value::Bool(*ok),
                Value::Str(user.clone()),
                taint.map(Value::Handle).unwrap_or(Value::Unit),
                grant.map(Value::Handle).unwrap_or(Value::Unit),
            ]),
            OkwsMsg::AddUser { user, password } => Value::List(vec![
                Value::Str("add-user".into()),
                Value::Str(user.clone()),
                Value::Str(password.clone()),
            ]),
            OkwsMsg::ChangePassword {
                user,
                new_password,
                reply,
            } => Value::List(vec![
                Value::Str("change-pw".into()),
                Value::Str(user.clone()),
                Value::Str(new_password.clone()),
                Value::Handle(*reply),
            ]),
            OkwsMsg::ConnHandoff {
                conn,
                user,
                taint,
                grant,
            } => Value::List(vec![
                Value::Str("conn".into()),
                Value::Handle(*conn),
                Value::Str(user.clone()),
                Value::Handle(*taint),
                Value::Handle(*grant),
            ]),
            OkwsMsg::SessionNew {
                user,
                service,
                port,
            } => Value::List(vec![
                Value::Str("session-new".into()),
                Value::Str(user.clone()),
                Value::Str(service.clone()),
                Value::Handle(*port),
            ]),
            OkwsMsg::SessionEnd { user, service } => Value::List(vec![
                Value::Str("session-end".into()),
                Value::Str(user.clone()),
                Value::Str(service.clone()),
            ]),
            OkwsMsg::SessionEndR => Value::List(vec![Value::Str("session-end-r".into())]),
        }
    }

    /// Decodes from a [`Value`] payload.
    pub fn from_value(value: &Value) -> Option<OkwsMsg> {
        let items = value.as_list()?;
        match items.first()?.as_str()? {
            "activate" => Some(OkwsMsg::Activate {
                service: items.get(1)?.as_str()?.to_string(),
                verify: items.get(2)?.as_handle()?,
            }),
            "register" => Some(OkwsMsg::Register {
                service: items.get(1)?.as_str()?.to_string(),
                port: items.get(2)?.as_handle()?,
            }),
            "login" => Some(OkwsMsg::Login {
                user: items.get(1)?.as_str()?.to_string(),
                password: items.get(2)?.as_str()?.to_string(),
                reply: items.get(3)?.as_handle()?,
            }),
            "login-r" => Some(OkwsMsg::LoginR {
                ok: items.get(1)?.as_bool()?,
                user: items.get(2)?.as_str()?.to_string(),
                taint: items.get(3).and_then(|v| v.as_handle()),
                grant: items.get(4).and_then(|v| v.as_handle()),
            }),
            "add-user" => Some(OkwsMsg::AddUser {
                user: items.get(1)?.as_str()?.to_string(),
                password: items.get(2)?.as_str()?.to_string(),
            }),
            "change-pw" => Some(OkwsMsg::ChangePassword {
                user: items.get(1)?.as_str()?.to_string(),
                new_password: items.get(2)?.as_str()?.to_string(),
                reply: items.get(3)?.as_handle()?,
            }),
            "conn" => Some(OkwsMsg::ConnHandoff {
                conn: items.get(1)?.as_handle()?,
                user: items.get(2)?.as_str()?.to_string(),
                taint: items.get(3)?.as_handle()?,
                grant: items.get(4)?.as_handle()?,
            }),
            "session-new" => Some(OkwsMsg::SessionNew {
                user: items.get(1)?.as_str()?.to_string(),
                service: items.get(2)?.as_str()?.to_string(),
                port: items.get(3)?.as_handle()?,
            }),
            "session-end" => Some(OkwsMsg::SessionEnd {
                user: items.get(1)?.as_str()?.to_string(),
                service: items.get(2)?.as_str()?.to_string(),
            }),
            "session-end-r" => Some(OkwsMsg::SessionEndR),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Handle::from_raw(9);
        let msgs = vec![
            OkwsMsg::Activate {
                service: "store".into(),
                verify: h,
            },
            OkwsMsg::Register {
                service: "store".into(),
                port: h,
            },
            OkwsMsg::Login {
                user: "u".into(),
                password: "p".into(),
                reply: h,
            },
            OkwsMsg::LoginR {
                ok: true,
                user: "u".into(),
                taint: Some(h),
                grant: Some(h),
            },
            OkwsMsg::LoginR {
                ok: false,
                user: "u".into(),
                taint: None,
                grant: None,
            },
            OkwsMsg::AddUser {
                user: "u".into(),
                password: "p".into(),
            },
            OkwsMsg::ChangePassword {
                user: "u".into(),
                new_password: "p2".into(),
                reply: h,
            },
            OkwsMsg::ConnHandoff {
                conn: h,
                user: "u".into(),
                taint: h,
                grant: h,
            },
            OkwsMsg::SessionNew {
                user: "u".into(),
                service: "s".into(),
                port: h,
            },
            OkwsMsg::SessionEnd {
                user: "u".into(),
                service: "s".into(),
            },
            OkwsMsg::SessionEndR,
        ];
        for m in msgs {
            assert_eq!(OkwsMsg::from_value(&m.to_value()), Some(m));
        }
    }
}
