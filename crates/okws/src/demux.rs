//! ok-demux: the trusted connection demultiplexer (§7.1–§7.3).
//!
//! ok-demux accepts each incoming TCP connection from netd, peeks at the
//! HTTP head to learn the requested service and credentials, authenticates
//! the user through idd, registers the user's taint with netd, and hands
//! the connection off to the right worker — to an existing session event
//! process when its session table has one, forking a fresh event process
//! otherwise.

use std::collections::BTreeMap;

use asbestos_kernel::{Handle, Label, Level, Message, SendArgs, Service, Sys, Value};
use asbestos_net::{listen_all_lanes, parse_request, HttpRequest, NetMsg};

use crate::idd::IDD_PORT_ENV;
use crate::proto::OkwsMsg;

/// Environment key for ok-demux's worker registration port.
pub const DEMUX_REG_ENV: &str = "okws.demux.reg";

/// Environment key for ok-demux's control port (SessionNew/SessionEnd).
pub const DEMUX_PORT_ENV: &str = "okws.demux.port";

/// Environment key listing configured services (a `Value::List` of names).
pub const SVC_LIST_ENV: &str = "okws.svc.list";

/// Environment key for one service's verification handle value.
pub fn svc_verify_env(service: &str) -> String {
    format!("okws.svc.{service}.verify")
}

/// Environment key for one service's declassifier flag.
pub fn svc_declassifier_env(service: &str) -> String {
    format!("okws.svc.{service}.declassifier")
}

/// Cycles charged per demux protocol event.
pub const DEMUX_EVENT_CYCLES: u64 = 150_000;

/// Cycles charged to parse an HTTP head.
pub const DEMUX_PARSE_CYCLES: u64 = 120_000;

struct ServiceEntry {
    verify: Handle,
    declassifier: bool,
    port: Option<Handle>,
}

enum Phase {
    ReadingRequest,
    AwaitingLogin { req: HttpRequest },
}

struct ConnState {
    conn: Handle,
    phase: Phase,
}

/// The ok-demux service.
pub struct OkDemux {
    tcp_port: u16,
    services: BTreeMap<String, ServiceEntry>,
    /// Credential cache: user → (uT, uG) (avoids re-login round trips for
    /// users with live sessions; idd still owns the durable mapping).
    creds: BTreeMap<String, (Handle, Handle)>,
    /// §7.3's session table: (user, service) → session port uW.
    sessions: BTreeMap<(String, String), Handle>,
    /// In-flight connections keyed by their per-connection reply port.
    pending: BTreeMap<Handle, ConnState>,
    notify_port: Option<Handle>,
    reg_port: Option<Handle>,
    control_port: Option<Handle>,
}

impl OkDemux {
    /// Creates a demux listening on `tcp_port` once started.
    pub fn new(tcp_port: u16) -> OkDemux {
        OkDemux {
            tcp_port,
            services: BTreeMap::new(),
            creds: BTreeMap::new(),
            sessions: BTreeMap::new(),
            pending: BTreeMap::new(),
            notify_port: None,
            reg_port: None,
            control_port: None,
        }
    }

    /// Responds directly on a connection (error paths) and forgets it.
    fn respond_direct(&mut self, sys: &mut Sys<'_>, reply_port: Handle, status: u16, msg: &str) {
        let Some(state) = self.pending.remove(&reply_port) else {
            return;
        };
        let response = asbestos_net::http::build_response(status, msg, msg.as_bytes());
        let _ = sys.send(state.conn, NetMsg::Write { bytes: response }.to_value());
        let _ = sys.send(state.conn, NetMsg::Close.to_value());
        self.release_conn(sys, reply_port, state.conn);
    }

    /// Drops the per-connection capabilities from our send label — the
    /// §9.3 "release that capability when the connection is passed to an
    /// event process or closed" step that keeps ok-demux's labels from
    /// growing per *connection* (they still grow per *session*).
    fn release_conn(&mut self, sys: &mut Sys<'_>, reply_port: Handle, conn: Handle) {
        let _ = sys.dissociate_port(reply_port);
        sys.self_contaminate(&Label::from_pairs(
            Level::Star,
            &[(reply_port, Level::L1), (conn, Level::L1)],
        ));
    }

    fn handle_new_conn(&mut self, sys: &mut Sys<'_>, conn: Handle) {
        sys.charge(DEMUX_EVENT_CYCLES);
        // Per-connection reply port: idd and netd get ⋆ grants as needed.
        let reply = sys.new_port(Label::top());
        self.pending.insert(
            reply,
            ConnState {
                conn,
                phase: Phase::ReadingRequest,
            },
        );
        // §7.2 step 3: peek at the request head (the worker will read the
        // request in full later, step 8).
        let _ = sys.send_args(
            conn,
            NetMsg::Read {
                max: 4096,
                reply,
                peek: true,
            }
            .to_value(),
            &SendArgs::new().grant(star(reply)),
        );
    }

    fn handle_head(&mut self, sys: &mut Sys<'_>, reply_port: Handle, bytes: &[u8]) {
        sys.charge(DEMUX_PARSE_CYCLES);
        let req = match parse_request(bytes) {
            Ok(req) => req,
            Err(_) => {
                self.respond_direct(sys, reply_port, 400, "Bad Request");
                return;
            }
        };
        let service = req.service().to_string();
        if !self.services.contains_key(&service) {
            self.respond_direct(sys, reply_port, 404, "No Such Service");
            return;
        }
        let (Some(user), Some(password)) = (req.param("user"), req.param("pw")) else {
            self.respond_direct(sys, reply_port, 401, "Credentials Required");
            return;
        };
        let user = user.to_string();
        let password = password.to_string();

        if let Some(&(taint, grant)) = self.creds.get(&user) {
            // Fast path: known user with live credentials.
            self.handoff(sys, reply_port, &req, &user, taint, grant);
            return;
        }
        // §7.2 step 3: authenticate through idd. Our verification handle
        // proves to idd that ok-demux is asking.
        let idd = sys
            .env(IDD_PORT_ENV)
            .and_then(|v| v.as_handle())
            .expect("idd publishes its login port");
        let my_verify = sys
            .env("okws.demux.verify")
            .and_then(|v| v.as_handle())
            .expect("the launcher provisioned our verification handle");
        let v = Label::from_pairs(Level::L3, &[(my_verify, Level::L0)]);
        let _ = sys.send_args(
            idd,
            OkwsMsg::Login {
                user,
                password,
                reply: reply_port,
            }
            .to_value(),
            &SendArgs::new().verify(v).grant(star(reply_port)),
        );
        if let Some(state) = self.pending.get_mut(&reply_port) {
            state.phase = Phase::AwaitingLogin { req };
        }
    }

    fn handle_login_reply(
        &mut self,
        sys: &mut Sys<'_>,
        reply_port: Handle,
        ok: bool,
        user: String,
        taint: Option<Handle>,
        grant: Option<Handle>,
    ) {
        sys.charge(DEMUX_EVENT_CYCLES);
        if !ok {
            self.respond_direct(sys, reply_port, 403, "Login Failed");
            return;
        }
        let (Some(taint), Some(grant)) = (taint, grant) else {
            self.respond_direct(sys, reply_port, 500, "Bad Login Reply");
            return;
        };
        self.creds.insert(user.clone(), (taint, grant));
        // Accept this user's taint from now on (needed to receive
        // SessionNew/SessionEnd from their tainted event processes); we
        // hold uT ⋆, so raising our own receive label is permitted.
        sys.raise_recv(taint, Level::L3)
            .expect("LoginR granted us the taint handle at ⋆");
        let Some(state) = self.pending.get_mut(&reply_port) else {
            return;
        };
        let Phase::AwaitingLogin { req } =
            std::mem::replace(&mut state.phase, Phase::ReadingRequest)
        else {
            return;
        };
        self.handoff(sys, reply_port, &req, &user, taint, grant);
    }

    fn handoff(
        &mut self,
        sys: &mut Sys<'_>,
        reply_port: Handle,
        req: &HttpRequest,
        user: &str,
        taint: Handle,
        grant: Handle,
    ) {
        sys.charge(DEMUX_EVENT_CYCLES);
        let Some(state) = self.pending.remove(&reply_port) else {
            return;
        };
        let conn = state.conn;
        let service = req.service().to_string();
        let entry = self
            .services
            .get(&service)
            .expect("service checked in handle_head");

        // §7.2 step 5: register the user's taint with netd (granting uT ⋆),
        // so responses can flow back over uC and nowhere else.
        let _ = sys.send_args(
            conn,
            NetMsg::AddTaint { taint }.to_value(),
            &SendArgs::new().grant(star(taint)),
        );

        let handoff = OkwsMsg::ConnHandoff {
            conn,
            user: user.to_string(),
            taint,
            grant,
        }
        .to_value();

        if let Some(&session_port) = self.sessions.get(&(user.to_string(), service.clone())) {
            // §7.3: route to the existing session event process.
            let _ = sys.send_args(session_port, handoff, &SendArgs::new().grant(star(conn)));
        } else if let Some(worker_port) = entry.port {
            // §7.2 step 6: fork a fresh event process in the worker. Grant
            // uC ⋆ and uG ⋆; contaminate with uT 3 (or grant uT ⋆ to
            // declassifiers, §7.6); raise the event process's receive label
            // so tainted data can reach it.
            let args = if entry.declassifier {
                SendArgs::new()
                    .grant(Label::from_pairs(
                        Level::L3,
                        &[
                            (conn, Level::Star),
                            (grant, Level::Star),
                            (taint, Level::Star),
                        ],
                    ))
                    .raise_recv(taint3(taint))
            } else {
                SendArgs::new()
                    .grant(Label::from_pairs(
                        Level::L3,
                        &[(conn, Level::Star), (grant, Level::Star)],
                    ))
                    .contaminate(taint3(taint))
                    .raise_recv(taint3(taint))
            };
            let _ = sys.send_args(worker_port, handoff, &args);
        }
        // Either way, the connection is no longer ours.
        self.release_conn(sys, reply_port, conn);
    }
}

impl Service for OkDemux {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        // Load the service table the launcher provisioned in our env.
        if let Some(Value::List(names)) = sys.env(SVC_LIST_ENV) {
            for name in names.iter().filter_map(Value::as_str) {
                let verify = sys
                    .env(&svc_verify_env(name))
                    .and_then(|v| v.as_handle())
                    .expect("launcher sets a verification handle per service");
                let declassifier = sys
                    .env(&svc_declassifier_env(name))
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                self.services.insert(
                    name.to_string(),
                    ServiceEntry {
                        verify,
                        declassifier,
                        port: None,
                    },
                );
            }
        }

        // Registration port (workers), control port (session events), and
        // the netd notification port.
        let reg = sys.new_port(Label::top());
        sys.set_port_label(reg, Label::top())
            .expect("creator owns the port");
        sys.publish_env(DEMUX_REG_ENV, Value::Handle(reg));
        self.reg_port = Some(reg);

        let control = sys.new_port(Label::top());
        sys.set_port_label(control, Label::top())
            .expect("creator owns the port");
        sys.publish_env(DEMUX_PORT_ENV, Value::Handle(control));
        self.control_port = Some(control);

        let notify = sys.new_port(Label::top());
        sys.set_port_label(notify, Label::top())
            .expect("creator owns the port");
        self.notify_port = Some(notify);
        // Register the listener with every netd lane: each lane owns the
        // connections the RSS demux hashes to it, and all of them announce
        // new connections on the same notify port. A single-lane front end
        // publishes no lane count and takes the one-LISTEN path the
        // single-netd build always took.
        listen_all_lanes(sys, self.tcp_port, notify);
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        // Connection events from netd.
        if Some(msg.port) == self.notify_port {
            if let Some(NetMsg::NewConn { port }) = NetMsg::from_value(&msg.body) {
                self.handle_new_conn(sys, port);
            }
            return;
        }
        // Worker registration (§7.1): verified against the launcher table.
        if Some(msg.port) == self.reg_port {
            if let Some(OkwsMsg::Register { service, port }) = OkwsMsg::from_value(&msg.body) {
                if let Some(entry) = self.services.get_mut(&service) {
                    if msg.verify.get(entry.verify) <= Level::L0 {
                        entry.port = Some(port);
                    }
                }
            }
            return;
        }
        // Session lifecycle events from worker event processes.
        if Some(msg.port) == self.control_port {
            match OkwsMsg::from_value(&msg.body) {
                Some(OkwsMsg::SessionNew {
                    user,
                    service,
                    port,
                }) => {
                    sys.charge(DEMUX_EVENT_CYCLES / 4);
                    self.sessions.insert((user, service), port);
                }
                Some(OkwsMsg::SessionEnd { user, service }) => {
                    // §7.3: "ok-demux cleans u's user-worker pairs out of
                    // its session table." Ack on the session port before
                    // releasing the uW ⋆: connections handed off before
                    // this point share uW's per-port FIFO with the ack, so
                    // the draining event process sheds them all and exits
                    // only once nothing more can arrive.
                    if let Some(port) = self.sessions.remove(&(user, service)) {
                        let _ = sys.send(port, OkwsMsg::SessionEndR.to_value());
                        sys.self_contaminate(&Label::from_pairs(Level::Star, &[(port, Level::L1)]));
                    }
                }
                _ => {}
            }
            return;
        }
        // Per-connection replies (netd ReadR or idd LoginR).
        if self.pending.contains_key(&msg.port) {
            if let Some(NetMsg::ReadR { bytes }) = NetMsg::from_value(&msg.body) {
                self.handle_head(sys, msg.port, &bytes);
            } else if let Some(OkwsMsg::LoginR {
                ok,
                user,
                taint,
                grant,
            }) = OkwsMsg::from_value(&msg.body)
            {
                self.handle_login_reply(sys, msg.port, ok, user, taint, grant);
            }
        }
    }
}

fn star(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

fn taint3(h: Handle) -> Label {
    Label::from_pairs(Level::Star, &[(h, Level::L3)])
}
