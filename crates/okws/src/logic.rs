//! Worker service logic.
//!
//! A worker process is the generic event-process machinery of
//! [`crate::worker`]; what distinguishes `/store` from `/bench` is a
//! [`WorkerLogic`] implementation. Logic is written continuation-style:
//! a request handler returns an [`Action`], and if the action was a
//! database operation the follow-up callback fires when the result set
//! completes (exactly the shape of the paper's event-driven servers, §6).
//!
//! Logic methods are `&self` and receive a [`SessionStore`] view for state:
//! per-user state must live in event-process memory, where the kernel
//! isolates it — that is the whole point of §6.

use asbestos_db::SqlValue;
use asbestos_net::HttpRequest;

/// What a logic handler wants done next.
#[derive(Debug)]
pub enum Action {
    /// Send this HTTP response body (a 200 unless `status` overrides) and
    /// finish the request.
    Respond {
        /// Response body bytes.
        body: Vec<u8>,
        /// HTTP status.
        status: u16,
    },
    /// Run a SELECT through ok-dbproxy; [`WorkerLogic::on_db_rows`] fires
    /// with the visible rows once the untainted `Done` arrives.
    DbQuery {
        /// SQL text (`?` placeholders allowed).
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
    },
    /// Run a write through ok-dbproxy with the worker's user credentials;
    /// [`WorkerLogic::on_db_exec`] fires with the outcome.
    DbExec {
        /// SQL text.
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
    },
    /// Respond, then end this session: notify ok-demux and `ep_exit`.
    RespondAndLogout {
        /// Response body.
        body: Vec<u8>,
    },
    /// Change this user's password through idd (§7's third standard
    /// worker); [`WorkerLogic::on_db_exec`] fires with the outcome.
    ChangePassword {
        /// The replacement password.
        new_password: String,
    },
    /// Look up a key in the shared cache (§2's isolated shared cache);
    /// [`WorkerLogic::on_cache`] fires with the (label-filtered) result.
    CacheGet {
        /// Cache key.
        key: String,
    },
    /// Store into the shared cache under this user's ownership, then
    /// respond — cache fills piggyback on responses, so no callback.
    CachePutAndRespond {
        /// Cache key.
        key: String,
        /// Bytes to cache.
        bytes: Vec<u8>,
        /// Response body.
        body: Vec<u8>,
    },
}

impl Action {
    /// A plain 200 response.
    pub fn ok(body: impl Into<Vec<u8>>) -> Action {
        Action::Respond {
            body: body.into(),
            status: 200,
        }
    }

    /// An error response.
    pub fn error(status: u16, msg: &str) -> Action {
        Action::Respond {
            body: msg.as_bytes().to_vec(),
            status,
        }
    }
}

/// Byte-range view over the event process's session memory, provided to
/// logic callbacks by the worker machinery.
pub trait SessionStore {
    /// Reads `len` bytes at `offset` within the session area.
    fn read(&self, offset: u64, len: usize) -> Vec<u8>;
    /// Writes bytes at `offset` within the session area.
    fn write(&mut self, offset: u64, data: &[u8]);
    /// Bytes available in the session area.
    fn capacity(&self) -> usize;
}

/// Application logic for one OKWS service.
pub trait WorkerLogic: 'static + Send {
    /// Handles a parsed HTTP request.
    fn on_request(&self, session: &mut dyn SessionStore, req: &HttpRequest) -> Action;

    /// Handles the completion of an [`Action::DbQuery`]. `rows` holds only
    /// the rows the kernel let through (own + declassified).
    fn on_db_rows(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        _rows: &[Vec<SqlValue>],
    ) -> Action {
        Action::error(500, "unexpected database rows")
    }

    /// Handles the completion of an [`Action::DbExec`] (also used for
    /// [`Action::ChangePassword`], whose outcome has the same shape).
    fn on_db_exec(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        _ok: bool,
        _affected: u64,
    ) -> Action {
        Action::error(500, "unexpected database result")
    }

    /// Handles the completion of an [`Action::CacheGet`]. `bytes` is `None`
    /// on a miss — or when the entry belongs to another user and the kernel
    /// dropped it (deliberately indistinguishable; the §7.5 pattern).
    fn on_cache(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        _key: &str,
        _bytes: Option<Vec<u8>>,
    ) -> Action {
        Action::error(500, "unexpected cache result")
    }

    /// Cycles of simulated user-space compute per request (the service's
    /// own work, charged to the OKWS category).
    fn request_cycles(&self) -> u64 {
        150_000
    }
}

// ---------------------------------------------------------------------
// The paper's evaluation services.
// ---------------------------------------------------------------------

/// §9.1's toy service: "stores data from a user's HTTP request and returns
/// it to the user in the subsequent request. The size of the response is
/// about 1K."
pub struct EchoStore {
    /// Bytes of session state kept per user (the paper's ≈1 KiB).
    pub state_bytes: usize,
}

impl EchoStore {
    /// Creates the service with the paper's ~1 KiB state size.
    pub fn new() -> EchoStore {
        EchoStore { state_bytes: 1024 }
    }
}

impl Default for EchoStore {
    fn default() -> EchoStore {
        EchoStore::new()
    }
}

impl WorkerLogic for EchoStore {
    fn on_request(&self, session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        if req.param("logout").is_some() {
            return Action::RespondAndLogout {
                body: b"goodbye".to_vec(),
            };
        }
        // Previous state goes back to the user.
        let len_bytes = session.read(0, 4);
        let prev_len = u32::from_le_bytes(len_bytes.try_into().expect("read 4 bytes")) as usize;
        let previous = if prev_len == 0 {
            Vec::new()
        } else {
            session.read(4, prev_len.min(self.state_bytes))
        };
        // New data (padded to ~1 KiB, like a real profile blob) replaces it.
        if let Some(data) = req.param("data") {
            let mut blob = data.as_bytes().to_vec();
            blob.resize(self.state_bytes, b'.');
            session.write(0, &(blob.len() as u32).to_le_bytes());
            session.write(4, &blob);
        }
        Action::ok(previous)
    }
}

/// §9.2's benchmark service: "responds with a string of characters whose
/// length depends on the client's parameters". With `len=11` the full
/// response is the paper's 144 bytes.
pub struct ParamLength;

impl WorkerLogic for ParamLength {
    fn on_request(&self, _session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        let len: usize = req.param("len").and_then(|l| l.parse().ok()).unwrap_or(11);
        Action::ok(vec![b'x'; len])
    }

    fn request_cycles(&self) -> u64 {
        400_000
    }
}

/// The password-change service (§7's third standard worker: "one each for
/// logging in, retrieving data, and changing a password").
pub struct Passwd;

impl WorkerLogic for Passwd {
    fn on_request(&self, _session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        match req.param("new") {
            Some(new) if !new.is_empty() => Action::ChangePassword {
                new_password: new.to_string(),
            },
            _ => Action::error(400, "need new="),
        }
    }

    fn on_db_exec(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        ok: bool,
        _affected: u64,
    ) -> Action {
        if ok {
            Action::ok(&b"password changed"[..])
        } else {
            Action::error(403, "password change refused")
        }
    }
}

/// A cache-accelerated profile reader: `?get=<user>` checks the shared
/// cache first and falls back to the database, filling the cache on the
/// way out (§2's shared-cache pattern). Writes go through [`Profile`].
pub struct CachedProfile;

impl WorkerLogic for CachedProfile {
    fn on_request(&self, _session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        match req.param("get") {
            Some(who) => Action::CacheGet {
                key: format!("profile:{who}"),
            },
            None => Action::error(400, "need get="),
        }
    }

    fn on_cache(
        &self,
        _session: &mut dyn SessionStore,
        req: &HttpRequest,
        _key: &str,
        bytes: Option<Vec<u8>>,
    ) -> Action {
        match bytes {
            Some(hit) => Action::ok(hit),
            None => Action::DbQuery {
                sql: "SELECT owner, bio FROM profiles WHERE owner = ?".into(),
                params: vec![SqlValue::Text(req.param("get").unwrap_or("").to_string())],
            },
        }
    }

    fn on_db_rows(
        &self,
        _session: &mut dyn SessionStore,
        req: &HttpRequest,
        rows: &[Vec<SqlValue>],
    ) -> Action {
        let mut body = String::new();
        for row in rows {
            let owner = row.first().and_then(|v| v.as_text()).unwrap_or("?");
            let bio = row.get(1).and_then(|v| v.as_text()).unwrap_or("");
            body.push_str(owner);
            body.push(':');
            body.push_str(bio);
            body.push('\n');
        }
        // Cache our own view for next time. The entry is owned by the
        // *requesting* user, so it can never serve anyone the cache's
        // labels would not allow.
        Action::CachePutAndRespond {
            key: format!("profile:{}", req.param("get").unwrap_or("")),
            bytes: body.clone().into_bytes(),
            body: body.into_bytes(),
        }
    }
}

/// A database-backed profile service: `?set=<bio>` stores the bio as a row
/// owned by the requesting user (or as a declassified row when the worker
/// runs as a §7.6 declassifier); `?get=<user>` reads bios back — label
/// enforcement means a plain worker only ever sees its own user's rows plus
/// declassified ones.
pub struct Profile;

impl Profile {
    /// Table DDL, installed through ok-dbproxy's worker-table path.
    pub const TABLE_DDL: &'static str = "CREATE TABLE profiles (owner, bio)";
}

impl WorkerLogic for Profile {
    fn on_request(&self, _session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        if let Some(bio) = req.param("set") {
            return Action::DbExec {
                sql: "INSERT INTO profiles VALUES (?, ?)".into(),
                params: vec![
                    SqlValue::Text(req.param("user").unwrap_or("").to_string()),
                    SqlValue::Text(bio.to_string()),
                ],
            };
        }
        if let Some(who) = req.param("get") {
            return Action::DbQuery {
                sql: "SELECT owner, bio FROM profiles WHERE owner = ?".into(),
                params: vec![SqlValue::Text(who.to_string())],
            };
        }
        Action::error(400, "need set= or get=")
    }

    fn on_db_rows(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        rows: &[Vec<SqlValue>],
    ) -> Action {
        let mut body = String::new();
        for row in rows {
            let owner = row.first().and_then(|v| v.as_text()).unwrap_or("?");
            let bio = row.get(1).and_then(|v| v.as_text()).unwrap_or("");
            body.push_str(owner);
            body.push(':');
            body.push_str(bio);
            body.push('\n');
        }
        Action::ok(body.into_bytes())
    }

    fn on_db_exec(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        ok: bool,
        _affected: u64,
    ) -> Action {
        if ok {
            Action::ok(&b"stored"[..])
        } else {
            Action::error(403, "write refused")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_net::parse_request;

    struct MemStore(Vec<u8>);
    impl SessionStore for MemStore {
        fn read(&self, offset: u64, len: usize) -> Vec<u8> {
            self.0[offset as usize..offset as usize + len].to_vec()
        }
        fn write(&mut self, offset: u64, data: &[u8]) {
            self.0[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        }
        fn capacity(&self) -> usize {
            self.0.len()
        }
    }

    fn req(target: &str) -> HttpRequest {
        parse_request(format!("GET {target} HTTP/1.0\r\n\r\n").as_bytes()).unwrap()
    }

    #[test]
    fn echo_store_returns_previous() {
        let logic = EchoStore::new();
        let mut mem = MemStore(vec![0; 4096]);
        let a = logic.on_request(&mut mem, &req("/store?data=first"));
        match a {
            Action::Respond { body, status } => {
                assert_eq!(status, 200);
                assert!(body.is_empty(), "nothing stored yet");
            }
            other => panic!("unexpected action: {other:?}"),
        }
        let a = logic.on_request(&mut mem, &req("/store?data=second"));
        match a {
            Action::Respond { body, .. } => {
                assert!(body.starts_with(b"first"));
                assert_eq!(body.len(), 1024, "padded to ~1K (§9.1)");
            }
            other => panic!("unexpected action: {other:?}"),
        }
    }

    #[test]
    fn echo_store_logout() {
        let logic = EchoStore::new();
        let mut mem = MemStore(vec![0; 4096]);
        assert!(matches!(
            logic.on_request(&mut mem, &req("/store?logout=1")),
            Action::RespondAndLogout { .. }
        ));
    }

    #[test]
    fn param_length_sizes_response() {
        let logic = ParamLength;
        let mut mem = MemStore(vec![0; 16]);
        match logic.on_request(&mut mem, &req("/bench?len=100")) {
            Action::Respond { body, .. } => assert_eq!(body.len(), 100),
            other => panic!("unexpected action: {other:?}"),
        }
        match logic.on_request(&mut mem, &req("/bench")) {
            Action::Respond { body, .. } => assert_eq!(body.len(), 11),
            other => panic!("unexpected action: {other:?}"),
        }
    }

    #[test]
    fn profile_routes_to_db() {
        let logic = Profile;
        let mut mem = MemStore(vec![0; 16]);
        assert!(matches!(
            logic.on_request(&mut mem, &req("/profile?user=u&set=hello")),
            Action::DbExec { .. }
        ));
        assert!(matches!(
            logic.on_request(&mut mem, &req("/profile?get=u")),
            Action::DbQuery { .. }
        ));
        assert!(matches!(
            logic.on_request(&mut mem, &req("/profile")),
            Action::Respond { status: 400, .. }
        ));
        let rows = vec![vec![
            SqlValue::Text("u".into()),
            SqlValue::Text("bio".into()),
        ]];
        match logic.on_db_rows(&mut mem, &req("/profile?get=u"), &rows) {
            Action::Respond { body, .. } => assert_eq!(body, b"u:bio\n"),
            other => panic!("unexpected action: {other:?}"),
        }
    }
}
