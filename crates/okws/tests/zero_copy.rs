//! The zero-copy budget of the steady-state request path.
//!
//! Once a session is warm (authenticated, event process cached), a request
//! crosses netd ingest → ok-demux head peek → worker full read → response
//! build → netd write. Exactly one of those stages may materialize a
//! payload buffer: the worker's exact-capacity response build. Everything
//! else — the NIC buffer entering the kernel, the peeked head riding to
//! ok-demux, the full request riding to the worker, the response riding
//! back out — moves refcounts.
//!
//! [`Payload`] counts every materialization (`copy_from_slice`,
//! `From<Vec<u8>>`) in a process-global counter, so the budget is
//! checkable end to end: N steady-state requests must cost exactly N
//! materializations. If any stage reintroduces a deep copy (a
//! `to_vec().into()` where a clone would do), the budget is exceeded and
//! this test fails.
//!
//! This file deliberately holds a single test: the counter is global to
//! the process, and one test per binary keeps the measurement free of
//! parallel-test noise.

use asbestos_kernel::{Kernel, Payload};
use asbestos_okws::logic::ParamLength;
use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

#[test]
fn steady_state_request_materializes_exactly_one_buffer() {
    let mut kernel = Kernel::new(214);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("bench", || Box::new(ParamLength)));
    config.users.push(("alice".into(), "pw-a".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Warm up: the first request authenticates through idd and forks the
    // session event process; the second confirms the cached-session path.
    // Neither is under measurement.
    for _ in 0..2 {
        let (status, _) = client
            .request_sync(&mut kernel, "bench", "alice", "pw-a", &[("q", "warm")])
            .expect("warmup response arrives");
        assert_eq!(status, 200);
    }

    // Measured steady state: one response build per request, nothing else.
    const REQUESTS: u64 = 8;
    let before = Payload::deep_copies();
    for i in 0..REQUESTS {
        let q = format!("payload-{i}");
        let (status, body) = client
            .request_sync(&mut kernel, "bench", "alice", "pw-a", &[("q", &q)])
            .expect("steady-state response arrives");
        assert_eq!(status, 200);
        assert!(!body.is_empty(), "the response body made it back intact");
    }
    let spent = Payload::deep_copies() - before;
    assert_eq!(
        spent, REQUESTS,
        "a steady-state request must materialize exactly one payload \
         (the response build); {spent} materializations for {REQUESTS} \
         requests means a stage on the hot path reintroduced a deep copy"
    );
}
