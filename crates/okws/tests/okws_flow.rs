//! End-to-end OKWS tests: the Figure 5 request flow, session caching
//! (§7.3), user isolation under worker compromise (§7.8), and decentralized
//! declassification (§7.6).

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Kernel, Label, Level, Value};
use asbestos_net::NetMsg;
use asbestos_okws::logic::{EchoStore, ParamLength, Profile};
use asbestos_okws::proto::OkwsMsg;
use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

fn store_deployment(seed: u64, users: &[(&str, &str)]) -> (Kernel, Okws, OkwsClient) {
    let mut kernel = Kernel::new(seed);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config
        .services
        .push(ServiceSpec::new("bench", || Box::new(ParamLength)));
    for (u, p) in users {
        config.users.push((u.to_string(), p.to_string()));
    }
    let okws = Okws::start(&mut kernel, config);
    let client = OkwsClient::new(&okws);
    (kernel, okws, client)
}

#[test]
fn figure5_request_flow_and_session_cache() {
    let (mut kernel, _okws, mut client) = store_deployment(201, &[("alice", "pw-a")]);

    // First request: authenticates, forks W[alice], stores data.
    let (status, body) = client
        .request_sync(
            &mut kernel,
            "store",
            "alice",
            "pw-a",
            &[("data", "first-secret")],
        )
        .expect("response arrives");
    assert_eq!(status, 200);
    assert!(body.is_empty(), "no previous data");
    let eps_after_first = kernel.stats().eps_created;

    // Second request: served by the *same* cached event process, which
    // returns the stored state (§7.3).
    let (status, body) = client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[("data", "second")])
        .expect("response arrives");
    assert_eq!(status, 200);
    assert!(body.starts_with(b"first-secret"));
    assert_eq!(body.len(), 1024, "§9.1's ~1K response");
    assert_eq!(
        kernel.stats().eps_created,
        eps_after_first,
        "no new event process for a cached session"
    );
}

#[test]
fn authentication_gates() {
    let (mut kernel, _okws, mut client) = store_deployment(202, &[("alice", "pw-a")]);

    let (status, _) = client
        .request_sync(&mut kernel, "store", "alice", "wrong", &[])
        .expect("error response still arrives");
    assert_eq!(status, 403);

    let (status, _) = client
        .request_sync(&mut kernel, "store", "mallory", "pw-a", &[])
        .expect("unknown user responds");
    assert_eq!(status, 403);

    let (status, _) = client
        .request_sync(&mut kernel, "nosuch", "alice", "pw-a", &[])
        .expect("unknown service responds");
    assert_eq!(status, 404);

    // Missing credentials entirely.
    let idx = client.driver.get(&mut kernel, 80, "/store");
    kernel.run();
    client.driver.poll(&kernel);
    let (status, _) = client.parse_response(idx).expect("401 response");
    assert_eq!(status, 401);
}

#[test]
fn sessions_are_isolated_between_users() {
    let (mut kernel, _okws, mut client) =
        store_deployment(203, &[("alice", "pw-a"), ("bob", "pw-b")]);

    client
        .request_sync(
            &mut kernel,
            "store",
            "alice",
            "pw-a",
            &[("data", "alice-secret")],
        )
        .unwrap();
    client
        .request_sync(
            &mut kernel,
            "store",
            "bob",
            "pw-b",
            &[("data", "bob-secret")],
        )
        .unwrap();

    // Each user gets exactly their own state back.
    let (_, alice_body) = client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[])
        .unwrap();
    assert!(alice_body.starts_with(b"alice-secret"));
    let (_, bob_body) = client
        .request_sync(&mut kernel, "store", "bob", "pw-b", &[])
        .unwrap();
    assert!(bob_body.starts_with(b"bob-secret"));

    // Two distinct event processes exist, one per session.
    let worker = kernel.find_process("worker-store").unwrap();
    assert_eq!(kernel.live_eps(worker).len(), 2);

    // Their labels carry different user taints (§7.2's security argument).
    let eps = kernel.live_eps(worker);
    let l0 = &kernel.event_process(eps[0]).send_label;
    let l1 = &kernel.event_process(eps[1]).send_label;
    assert_ne!(l0, l1, "per-user taints must differ");
}

#[test]
fn logout_ends_the_session() {
    let (mut kernel, _okws, mut client) = store_deployment(204, &[("alice", "pw-a")]);

    client
        .request_sync(
            &mut kernel,
            "store",
            "alice",
            "pw-a",
            &[("data", "persisted")],
        )
        .unwrap();
    let worker = kernel.find_process("worker-store").unwrap();
    assert_eq!(kernel.live_eps(worker).len(), 1);

    let (status, body) = client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[("logout", "1")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"goodbye");
    assert!(
        kernel.live_eps(worker).is_empty(),
        "ep_exit freed the session"
    );

    // A new request forks a fresh event process with empty state.
    let (_, body) = client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[])
        .unwrap();
    assert!(body.is_empty(), "state did not survive logout");
    assert_eq!(kernel.live_eps(worker).len(), 1);
}

/// A compromised worker: ships every user's session data to an external
/// collaborator and tries to launder it through the database. §7.8's claim
/// is that *none* of this can violate user isolation, because the kernel —
/// not worker code — enforces the policy.
struct EvilEcho;

impl asbestos_okws::WorkerLogic for EvilEcho {
    fn on_request(
        &self,
        session: &mut dyn asbestos_okws::SessionStore,
        req: &asbestos_net::HttpRequest,
    ) -> asbestos_okws::Action {
        // Store the user's secret like the honest service would.
        if let Some(data) = req.param("data") {
            let bytes = data.as_bytes();
            session.write(0, &(bytes.len() as u32).to_le_bytes());
            session.write(4, bytes);
            // Exfiltration attempt #1: write the secret into the shared
            // database table, hoping other users can read it.
            return asbestos_okws::Action::DbExec {
                sql: "INSERT INTO loot VALUES (?)".into(),
                params: vec![asbestos_db::SqlValue::Text(data.to_string())],
            };
        }
        // Retrieval: read whatever loot the DB will give us.
        asbestos_okws::Action::DbQuery {
            sql: "SELECT stolen FROM loot".into(),
            params: vec![],
        }
    }

    fn on_db_exec(
        &self,
        _session: &mut dyn asbestos_okws::SessionStore,
        _req: &asbestos_net::HttpRequest,
        ok: bool,
        _affected: u64,
    ) -> asbestos_okws::Action {
        asbestos_okws::Action::ok(if ok { &b"stored"[..] } else { &b"refused"[..] })
    }

    fn on_db_rows(
        &self,
        _session: &mut dyn asbestos_okws::SessionStore,
        _req: &asbestos_net::HttpRequest,
        rows: &[Vec<asbestos_db::SqlValue>],
    ) -> asbestos_okws::Action {
        let mut body = String::new();
        for row in rows {
            if let Some(t) = row.first().and_then(|v| v.as_text()) {
                body.push_str(t);
                body.push('\n');
            }
        }
        asbestos_okws::Action::ok(body.into_bytes())
    }
}

#[test]
fn compromised_worker_cannot_leak_across_users() {
    let mut kernel = Kernel::new(205);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("evil", || Box::new(EvilEcho)));
    config
        .worker_tables
        .push("CREATE TABLE loot (stolen)".into());
    config.users.push(("alice".into(), "pw-a".into()));
    config.users.push(("mallory".into(), "pw-m".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Alice uses the (compromised) service; her secret lands in the DB —
    // but in a row owned by alice.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "evil",
            "alice",
            "pw-a",
            &[("data", "alice-card-number")],
        )
        .unwrap();
    assert_eq!(body, b"stored");

    // Mallory asks the same compromised service to dump the loot table.
    // The proxy sends alice's row tainted aT 3; the kernel drops it at
    // mallory's event process. Mallory sees nothing.
    let drops_before = kernel.stats().dropped_label_check;
    let (status, body) = client
        .request_sync(&mut kernel, "evil", "mallory", "pw-m", &[])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"", "mallory must not see alice's data");
    assert!(
        kernel.stats().dropped_label_check > drops_before,
        "the leak attempt was dropped by label checks"
    );

    // Alice, by contrast, can read her own row back.
    let (_, body) = client
        .request_sync(&mut kernel, "evil", "alice", "pw-a", &[])
        .unwrap();
    assert_eq!(body, b"alice-card-number\n");
}

/// A deeply compromised worker that bypasses the logic API entirely: raw
/// event-process code that fires the session contents at an external sink.
struct RawEvil;

impl asbestos_kernel::EpService for RawEvil {
    fn on_base_start(&mut self, sys: &mut asbestos_kernel::Sys<'_>) {
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top()).unwrap();
        sys.publish_env("okws.worker.rawevil.port", Value::Handle(port));
    }

    fn on_event(&self, sys: &mut asbestos_kernel::Sys<'_>, msg: &asbestos_kernel::Message) {
        if let Some(OkwsMsg::Activate { service, verify }) = OkwsMsg::from_value(&msg.body) {
            let demux = sys.env("okws.demux.reg").unwrap().as_handle().unwrap();
            let port = sys
                .env("okws.worker.rawevil.port")
                .unwrap()
                .as_handle()
                .unwrap();
            let v = Label::from_pairs(Level::L3, &[(verify, Level::L0)]);
            let _ = sys.send_args(
                demux,
                OkwsMsg::Register { service, port }.to_value(),
                &asbestos_kernel::SendArgs::new().verify(v),
            );
            let _ = sys.ep_exit();
            return;
        }
        if let Some(OkwsMsg::ConnHandoff { conn, user, .. }) = OkwsMsg::from_value(&msg.body) {
            // Leak attempt: raw send of the user's name to the evil sink.
            if let Some(sink) = sys.env("evil.sink").and_then(|v| v.as_handle()) {
                let _ = sys.send(sink, Value::Str(format!("stolen from {user}")));
            }
            // Still answer the request so the connection completes.
            let response = asbestos_net::http::ok_response(b"served");
            let _ = sys.send(conn, NetMsg::Write { bytes: response }.to_value());
            let _ = sys.send(conn, NetMsg::Close.to_value());
            let _ = sys.ep_exit();
        }
    }
}

#[test]
fn raw_compromise_cannot_reach_external_sink() {
    // §7.8's threat model at full strength: the worker's *code* is
    // attacker-controlled (not just its logic callbacks), legitimately
    // installed through the launcher, and tries a raw IPC exfiltration to
    // an untainted collaborator. The kernel's label check on the sink's
    // receive label must stop it.
    let mut kernel = Kernel::new(206);

    // The external collaborator: an ordinary untainted process.
    let received = Arc::new(Mutex::new(0u32));
    let r2 = received.clone();
    kernel.spawn(
        "evil-sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("evil.sink", Value::Handle(p));
            },
            move |_, _| *r2.lock().unwrap() += 1,
        ),
    );

    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::raw("rawevil", || Box::new(RawEvil)));
    config.users.push(("alice".into(), "pw-a".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    let drops_before = kernel.stats().dropped_label_check;
    let (status, body) = client
        .request_sync(&mut kernel, "rawevil", "alice", "pw-a", &[])
        .expect("the compromised worker still answers its own user");
    assert_eq!(status, 200);
    assert_eq!(body, b"served");
    // The exfiltration send happened — and was dropped by the kernel.
    assert_eq!(
        *received.lock().unwrap(),
        0,
        "sink must never hear from tainted workers"
    );
    assert!(kernel.stats().dropped_label_check > drops_before);
}

#[test]
fn declassifier_publishes_and_workers_read() {
    // §7.6 end to end: "pubprofile" is a declassifier worker; alice uses it
    // to publish her bio; bob reads the published bio through the ordinary
    // profile worker.
    let mut kernel = Kernel::new(209);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config
        .services
        .push(ServiceSpec::new("pubprofile", || Box::new(Profile)).declassifier());
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    config.users.push(("alice".into(), "pw-a".into()));
    config.users.push(("bob".into(), "pw-b".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Alice stores a *private* bio via the ordinary worker.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "profile",
            "alice",
            "pw-a",
            &[("set", "private-bio")],
        )
        .unwrap();
    assert_eq!(body, b"stored");

    // And publishes a public bio via the declassifier.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "pubprofile",
            "alice",
            "pw-a",
            &[("set", "public-bio")],
        )
        .unwrap();
    assert_eq!(body, b"stored");

    // Bob reads alice's profile: only the declassified row comes through.
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "bob", "pw-b", &[("get", "alice")])
        .unwrap();
    assert_eq!(body, b"alice:public-bio\n");

    // Alice sees both: her own private row and the declassified one.
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "alice", "pw-a", &[("get", "alice")])
        .unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("private-bio"));
    assert!(text.contains("public-bio"));
}

#[test]
fn concurrent_connections_to_one_session_serialize() {
    // A session event process serves one request at a time; connections
    // arriving mid-request queue in EP memory and are answered in order.
    let (mut kernel, _okws, mut client) = store_deployment(212, &[("alice", "pw-a")]);
    client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[("data", "seed")])
        .unwrap();

    // Three simultaneous requests for the same session.
    let idxs: Vec<usize> = (0..3)
        .map(|_| client.request(&mut kernel, "store", "alice", "pw-a", &[]))
        .collect();
    kernel.run();
    client.driver.poll(&kernel);
    for idx in idxs {
        let (status, body) = client
            .parse_response(idx)
            .expect("queued connection still answered");
        assert_eq!(status, 200);
        assert!(body.starts_with(b"seed"));
    }
    // Still exactly one event process for the session.
    let worker = kernel.find_process("worker-store").unwrap();
    assert_eq!(kernel.live_eps(worker).len(), 1);
}

#[test]
fn queue_exhaustion_degrades_to_drops_not_leaks() {
    // §8: "Asbestos does not yet deal gracefully with certain forms of
    // resource exhaustion." Our explicit queue bound turns exhaustion into
    // silent drops; this test confirms overload never breaks isolation —
    // requests fail or succeed for their *own* user only.
    let (mut kernel, _okws, mut client) =
        store_deployment(211, &[("alice", "pw-a"), ("bob", "pw-b")]);
    // Establish both sessions under normal conditions.
    client
        .request_sync(
            &mut kernel,
            "store",
            "alice",
            "pw-a",
            &[("data", "alice-data")],
        )
        .unwrap();
    client
        .request_sync(&mut kernel, "store", "bob", "pw-b", &[("data", "bob-data")])
        .unwrap();

    // Severely constrain the kernel queue and fire a burst.
    kernel.set_queue_limit(6);
    let mut idxs = Vec::new();
    for _ in 0..10 {
        idxs.push(client.request(&mut kernel, "store", "alice", "pw-a", &[]));
        idxs.push(client.request(&mut kernel, "store", "bob", "pw-b", &[]));
    }
    kernel.run();
    client.driver.poll(&kernel);
    assert!(
        kernel.stats().dropped_queue_full > 0,
        "overload actually occurred"
    );

    // Every response that did arrive is the right user's data.
    for (i, idx) in idxs.iter().enumerate() {
        if let Some((status, body)) = client.parse_response(*idx) {
            if status == 200 && !body.is_empty() {
                let expect: &[u8] = if i % 2 == 0 {
                    b"alice-data"
                } else {
                    b"bob-data"
                };
                assert!(
                    body.starts_with(expect),
                    "request {i} got the wrong user's data"
                );
            }
        }
    }

    // The system recovers once the pressure is off.
    kernel.set_queue_limit(asbestos_kernel::kernel::DEFAULT_QUEUE_LIMIT);
    let (status, body) = client
        .request_sync(&mut kernel, "store", "alice", "pw-a", &[])
        .unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with(b"alice-data"));
}

#[test]
fn label_growth_matches_section_9_3() {
    // §9.3's accounting: per user, idd and ok-dbproxy's send labels gain
    // two handles, netd's receive label gains one declassification, and
    // ok-demux holds one session-port handle per live session.
    let users: Vec<(String, String)> = (0..20)
        .map(|i| (format!("u{i}"), format!("pw{i}")))
        .collect();
    let mut kernel = Kernel::new(210);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("bench", || Box::new(ParamLength)));
    config.users = users.clone();
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    let idd = kernel.find_process("idd").unwrap();
    let netd = kernel.find_process("netd").unwrap();
    let demux = kernel.find_process("ok-demux").unwrap();
    let idd_before = kernel.process(idd).send_label.entry_count();
    let netd_before = kernel.process(netd).recv_label.entry_count();
    let demux_before = kernel.process(demux).send_label.entry_count();

    for (u, p) in &users {
        client
            .request_sync(&mut kernel, "bench", u, p, &[])
            .unwrap();
    }

    let idd_after = kernel.process(idd).send_label.entry_count();
    let netd_after = kernel.process(netd).recv_label.entry_count();
    let demux_after = kernel.process(demux).send_label.entry_count();
    assert_eq!(
        idd_after - idd_before,
        2 * users.len(),
        "uT ⋆ + uG ⋆ per user in idd"
    );
    assert_eq!(
        netd_after - netd_before,
        users.len(),
        "one uT 3 raise per user in netd"
    );
    assert!(
        demux_after - demux_before >= users.len(),
        "ok-demux holds at least one session-port handle per session"
    );
}

/// A worker that tries to dump the trusted parties' *raw* tables: idd's
/// credential store and ok-dbproxy's uid map. Neither carries the hidden
/// ownership column, so the proxy must refuse the statements outright —
/// without the worker-table check, `SELECT *` on a raw table would
/// misread its first column as the owner id and leak rows untainted.
struct TableSnoop;

impl asbestos_okws::WorkerLogic for TableSnoop {
    fn on_request(
        &self,
        _session: &mut dyn asbestos_okws::SessionStore,
        req: &asbestos_net::HttpRequest,
    ) -> asbestos_okws::Action {
        let table = req.param("table").unwrap_or("okws_users").to_string();
        if req.param("drop").is_some() {
            return asbestos_okws::Action::DbExec {
                sql: format!("DELETE FROM {table}"),
                params: vec![],
            };
        }
        asbestos_okws::Action::DbQuery {
            sql: format!("SELECT * FROM {table}"),
            params: vec![],
        }
    }

    fn on_db_exec(
        &self,
        _session: &mut dyn asbestos_okws::SessionStore,
        _req: &asbestos_net::HttpRequest,
        ok: bool,
        _affected: u64,
    ) -> asbestos_okws::Action {
        asbestos_okws::Action::ok(if ok { &b"dropped"[..] } else { &b"refused"[..] })
    }

    fn on_db_rows(
        &self,
        _session: &mut dyn asbestos_okws::SessionStore,
        _req: &asbestos_net::HttpRequest,
        rows: &[Vec<asbestos_db::SqlValue>],
    ) -> asbestos_okws::Action {
        asbestos_okws::Action::ok(format!("{} rows", rows.len()).into_bytes())
    }
}

#[test]
fn workers_cannot_reach_raw_credential_tables() {
    let mut kernel = Kernel::new(213);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("snoop", || Box::new(TableSnoop)));
    config.users.push(("alice".into(), "pw-a".into()));
    config.users.push(("bob".into(), "pw-b".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // idd's password table and the proxy's uid map: zero rows visible,
    // even though both tables exist and have rows.
    for table in ["okws_users", "dbproxy_owners"] {
        let (status, body) = client
            .request_sync(&mut kernel, "snoop", "alice", "pw-a", &[("table", table)])
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            body, b"0 rows",
            "a worker dump of raw table {table} must come back empty"
        );
    }

    // Destructive writes are refused too — and the credentials survive:
    // bob can still log in afterwards.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "snoop",
            "alice",
            "pw-a",
            &[("table", "okws_users"), ("drop", "1")],
        )
        .unwrap();
    assert_eq!(body, b"refused");
    let (status, _) = client
        .request_sync(
            &mut kernel,
            "snoop",
            "bob",
            "pw-b",
            &[("table", "okws_users")],
        )
        .unwrap();
    assert_eq!(status, 200, "bob's credentials survived the attack");
}
