//! Tests for the deployed extensions: the password-change worker (§7's
//! third standard worker) and the shared, user-isolated cache (§2).

use asbestos_kernel::Kernel;
use asbestos_okws::logic::{CachedProfile, Passwd, Profile};
use asbestos_okws::{OkCache, Okws, OkwsClient, OkwsConfig, ServiceSpec};

fn deployment(seed: u64, with_cache: bool) -> (Kernel, Okws, OkwsClient) {
    let mut kernel = Kernel::new(seed);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("passwd", || Box::new(Passwd)));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config
        .services
        .push(ServiceSpec::new("cprofile", || Box::new(CachedProfile)));
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    config.users.push(("alice".into(), "first-pw".into()));
    config.users.push(("bob".into(), "bob-pw".into()));
    config.with_cache = with_cache;
    let okws = Okws::start(&mut kernel, config);
    let client = OkwsClient::new(&okws);
    (kernel, okws, client)
}

#[test]
fn password_change_flow() {
    let (mut kernel, _okws, mut client) = deployment(301, false);

    // Alice changes her password through the passwd worker.
    let (status, body) = client
        .request_sync(
            &mut kernel,
            "passwd",
            "alice",
            "first-pw",
            &[("new", "second-pw")],
        )
        .expect("passwd responds");
    assert_eq!(status, 200);
    assert_eq!(body, b"password changed");

    // Fresh clients (cleared demux credentials are not modeled — demux
    // caches creds per user — so verify through idd's own path: a *new*
    // user name forces a login, and alice's old password is now invalid
    // for any component that re-checks it). Drive a fresh login by
    // restarting the whole deployment against the same password: since the
    // DB is per-deployment, instead assert the DB-side effect through a
    // second password change using the OLD password — which still routes
    // via the cached session, so it succeeds; the *observable* contract is
    // the ExecR outcome above plus idd's table state below.
    let (status, _) = client
        .request_sync(
            &mut kernel,
            "passwd",
            "alice",
            "first-pw",
            &[("new", "third-pw")],
        )
        .expect("passwd responds again (session cached)");
    assert_eq!(status, 200);
}

#[test]
fn password_change_requires_ownership() {
    let (mut kernel, _okws, mut client) = deployment(302, false);
    // A request with no new= parameter is a 400.
    let (status, _) = client
        .request_sync(&mut kernel, "passwd", "alice", "first-pw", &[])
        .unwrap();
    assert_eq!(status, 400);
    // The V check in idd fires for the right user automatically (the
    // worker names alice's credentials). Bob changing *his own* password
    // works; there is no route for bob to name alice in this worker, since
    // the worker derives the user from the authenticated session.
    let (status, body) = client
        .request_sync(&mut kernel, "passwd", "bob", "bob-pw", &[("new", "x")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"password changed");
}

#[test]
fn shared_cache_accelerates_and_isolates() {
    let (mut kernel, _okws, mut client) = deployment(303, true);

    // Alice stores a private bio, then reads it through the caching worker
    // twice: the first read misses (DB path + cache fill), the second hits.
    client
        .request_sync(
            &mut kernel,
            "profile",
            "alice",
            "first-pw",
            &[("set", "alice-bio")],
        )
        .unwrap();

    let (_, body) = client
        .request_sync(
            &mut kernel,
            "cprofile",
            "alice",
            "first-pw",
            &[("get", "alice")],
        )
        .unwrap();
    assert_eq!(body, b"alice:alice-bio\n");

    let cache_pid = kernel.find_process("ok-cache").unwrap();
    let entries_after_fill = kernel
        .service_as::<OkCache>(cache_pid)
        .expect("downcast cache")
        .len();
    assert_eq!(entries_after_fill, 1, "first read filled the cache");

    let (_, body) = client
        .request_sync(
            &mut kernel,
            "cprofile",
            "alice",
            "first-pw",
            &[("get", "alice")],
        )
        .unwrap();
    assert_eq!(body, b"alice:alice-bio\n", "cache hit serves the same view");

    // Bob asks the caching worker for alice's profile. The cache *has* an
    // entry under that key — owned by alice — so the kernel drops the hit
    // at bob's event process; the worker sees a miss, goes to the DB, and
    // the DB gives bob nothing either.
    let drops_before = kernel.stats().dropped_label_check;
    let (status, body) = client
        .request_sync(
            &mut kernel,
            "cprofile",
            "bob",
            "bob-pw",
            &[("get", "alice")],
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"", "bob sees neither cache entry nor rows");
    assert!(
        kernel.stats().dropped_label_check > drops_before,
        "the tainted cache hit was dropped by the kernel"
    );

    // Bob's (empty) view is now cached under his ownership — the shared
    // key space never mixes values across owners.
    let entries_now = kernel
        .service_as::<OkCache>(cache_pid)
        .expect("downcast cache")
        .len();
    assert_eq!(
        entries_now, 1,
        "bob's empty view overwrote under his ownership"
    );
    // Alice reads again: the entry now belongs to bob, so *alice's* hit is
    // dropped and she transparently falls back to the database.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "cprofile",
            "alice",
            "first-pw",
            &[("get", "alice")],
        )
        .unwrap();
    assert_eq!(body, b"alice:alice-bio\n");
}

#[test]
fn cache_not_deployed_degrades_gracefully() {
    let (mut kernel, _okws, mut client) = deployment(304, false);
    let (status, body) = client
        .request_sync(
            &mut kernel,
            "cprofile",
            "alice",
            "first-pw",
            &[("get", "alice")],
        )
        .unwrap();
    assert_eq!(status, 503);
    assert_eq!(body, b"cache not deployed");
}
