//! File-server integration tests: the §5.2 privacy example (Figure 2), the
//! §5.4 integrity policies, and transitive leak prevention through the
//! server.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_fs::{spawn_fs, FsMsg};
use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs, Value};

/// Spawns a "shell" process for a user: registers with the file server,
/// stores its handles in its env, and then executes injected commands.
/// Commands drive the test scenarios.
fn spawn_shell(kernel: &mut Kernel, name: &'static str) -> Handle {
    let env_key = format!("{name}.cmd");
    kernel.spawn(
        name,
        Category::Other,
        service_with_start(
            {
                let env_key = env_key.clone();
                move |sys| {
                    let cmd = sys.new_port(Label::top());
                    sys.set_port_label(cmd, Label::top()).unwrap();
                    sys.publish_env(&env_key, Value::Handle(cmd));
                    let reply = sys.new_port(Label::top());
                    sys.set_port_label(reply, Label::top()).unwrap();
                    sys.set_env("reply", Value::Handle(reply));
                    let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                    sys.send_args(
                        cmd, // self-note so `reply` stays alive in env
                        Value::Unit,
                        &SendArgs::new(),
                    )
                    .ok();
                    sys.send(
                        fs,
                        FsMsg::AddUser {
                            user: name.to_string(),
                            reply,
                        }
                        .to_value(),
                    )
                    .unwrap();
                }
            },
            move |sys, msg| {
                // Handle registration replies.
                if let Some(FsMsg::AddUserR { taint, grant }) = FsMsg::from_value(&msg.body) {
                    sys.set_env("taint", Value::Handle(taint));
                    sys.set_env("grant", Value::Handle(grant));
                    // The server already raised our receive label for uT
                    // (via D_R) and granted uG 0; nothing more to do.
                    return;
                }
                // Commands: ["read", file] / ["write", file, bytes] /
                // ["forward-to", port] — forward last read data elsewhere.
                let Some(items) = msg.body.as_list() else {
                    return;
                };
                let Some(cmd) = items.first().and_then(Value::as_str) else {
                    return;
                };
                match cmd {
                    "read" => {
                        let file = items[1].as_str().unwrap().to_string();
                        let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                        let reply = sys.env("reply").unwrap().as_handle().unwrap();
                        sys.send(fs, FsMsg::Read { name: file, reply }.to_value())
                            .unwrap();
                    }
                    "write" => {
                        let file = items[1].as_str().unwrap().to_string();
                        let data = items[2].as_bytes().unwrap().to_vec();
                        let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                        let grant = sys.env("grant").unwrap().as_handle().unwrap();
                        // §5.4: name the credential explicitly.
                        let v = Label::from_pairs(Level::L3, &[(grant, Level::L0)]);
                        sys.send_args(
                            fs,
                            FsMsg::Write {
                                name: file,
                                data: data.into(),
                                reply: None,
                            }
                            .to_value(),
                            &SendArgs::new().verify(v),
                        )
                        .unwrap();
                    }
                    "write-unproven" => {
                        let file = items[1].as_str().unwrap().to_string();
                        let data = items[2].as_bytes().unwrap().to_vec();
                        let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                        sys.send(
                            fs,
                            FsMsg::Write {
                                name: file,
                                data: data.into(),
                                reply: None,
                            }
                            .to_value(),
                        )
                        .unwrap();
                    }
                    "forward-to" => {
                        let target = items[1].as_handle().unwrap();
                        let data = sys.env("last-read").unwrap_or(Value::Unit);
                        sys.send(target, data).unwrap();
                    }
                    _ => {}
                }
                // Stash read replies for potential forwarding.
                if let Some(FsMsg::ReadR { data: Some(d), .. }) = FsMsg::from_value(&msg.body) {
                    sys.set_env("last-read", Value::Bytes(d));
                }
            },
        ),
    );
    kernel.run();
    kernel.global_env(&env_key).unwrap().as_handle().unwrap()
}

#[test]
fn taint_on_read_and_figure2_isolation() {
    let mut kernel = Kernel::new(51);
    let fs = spawn_fs(&mut kernel);
    let u_cmd = spawn_shell(&mut kernel, "u-shell");
    let v_cmd = spawn_shell(&mut kernel, "v-shell");

    // u's terminal: a sink that only u's data may reach. Its receive label
    // is {uT 3, 2}, assigned out of band as in Figure 2.
    let seen = Arc::new(Mutex::new(Vec::<Vec<u8>>::new()));
    let s2 = seen.clone();
    let term = kernel.spawn(
        "u-terminal",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("term.port", Value::Handle(p));
            },
            move |_sys, msg| {
                if let Some(b) = msg.body.as_bytes() {
                    s2.lock().unwrap().push(b.to_vec());
                }
            },
        ),
    );
    kernel.run();
    let u_shell = kernel.find_process("u-shell").unwrap();
    let u_taint = kernel
        .process(u_shell)
        .env
        .get("taint")
        .unwrap()
        .as_handle()
        .unwrap();
    let term_port = kernel.global_env("term.port").unwrap().as_handle().unwrap();
    kernel.set_process_labels(
        term,
        None,
        Some(Label::from_pairs(Level::L2, &[(u_taint, Level::L3)])),
    );

    // u writes a secret, reads it back (tainting the shell), forwards to
    // the terminal: allowed (U_S ⊑ UT_R).
    kernel.inject(
        u_cmd,
        Value::List(vec![
            "write".into(),
            "u-diary".into(),
            Value::Bytes(b"dear diary".to_vec().into()),
        ]),
    );
    kernel.run();
    // Create the file first — writes to unknown files are refused.
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "u-diary".into(),
            user: "u-shell".into(),
        }
        .to_value(),
    );
    kernel.run();
    kernel.inject(
        u_cmd,
        Value::List(vec![
            "write".into(),
            "u-diary".into(),
            Value::Bytes(b"dear diary".to_vec().into()),
        ]),
    );
    kernel.inject(u_cmd, Value::List(vec!["read".into(), "u-diary".into()]));
    kernel.run();
    kernel.inject(
        u_cmd,
        Value::List(vec!["forward-to".into(), Value::Handle(term_port)]),
    );
    kernel.run();
    assert_eq!(*seen.lock().unwrap(), vec![b"dear diary".to_vec()]);

    // u's shell is now tainted with uT 3.
    assert_eq!(kernel.process(u_shell).send_label.get(u_taint), Level::L3);

    // v reads u's diary: v's shell never raised its receive label for uT,
    // so the tainted reply is *dropped by the kernel* — v sees nothing.
    let drops_before = kernel.stats().dropped_label_check;
    kernel.inject(v_cmd, Value::List(vec!["read".into(), "u-diary".into()]));
    kernel.run();
    assert_eq!(kernel.stats().dropped_label_check, drops_before + 1);

    // Even if v's shell *did* accept u's taint (raised out of band), a
    // shell carrying v's own data as well — V_S = {uT 3, vT 3, 1} — cannot
    // reach u's terminal: V_S ⋢ UT_R because vT: 3 > 2 (Figure 2's claim).
    let v_shell = kernel.find_process("v-shell").unwrap();
    let v_taint = kernel
        .process(v_shell)
        .env
        .get("taint")
        .unwrap()
        .as_handle()
        .unwrap();
    // v touches its own data first (vT 3)...
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "v-notes".into(),
            user: "v-shell".into(),
        }
        .to_value(),
    );
    kernel.run();
    kernel.inject(
        v_cmd,
        Value::List(vec![
            "write".into(),
            "v-notes".into(),
            Value::Bytes(b"v stuff".to_vec().into()),
        ]),
    );
    kernel.inject(v_cmd, Value::List(vec!["read".into(), "v-notes".into()]));
    kernel.run();
    assert_eq!(kernel.process(v_shell).send_label.get(v_taint), Level::L3);
    // ...then gets u's taint accepted out of band and reads u's diary...
    let raised = kernel
        .process(v_shell)
        .recv_label
        .lub(&Label::from_pairs(Level::Star, &[(u_taint, Level::L3)]));
    kernel.set_process_labels(v_shell, None, Some(raised));
    kernel.inject(v_cmd, Value::List(vec!["read".into(), "u-diary".into()]));
    kernel.run();
    // ...and the forward to u's terminal is dropped by the kernel.
    let drops = kernel.stats().dropped_label_check;
    kernel.inject(
        v_cmd,
        Value::List(vec!["forward-to".into(), Value::Handle(term_port)]),
    );
    kernel.run();
    assert_eq!(kernel.stats().dropped_label_check, drops + 1);
    assert_eq!(
        seen.lock().unwrap().len(),
        1,
        "terminal saw only u's own send"
    );
}

#[test]
fn writes_require_speak_for_proof() {
    let mut kernel = Kernel::new(52);
    let fs = spawn_fs(&mut kernel);
    let u_cmd = spawn_shell(&mut kernel, "u-shell");
    let v_cmd = spawn_shell(&mut kernel, "v-shell");

    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "u-file".into(),
            user: "u-shell".into(),
        }
        .to_value(),
    );
    kernel.run();

    // u writes with proof: accepted.
    kernel.inject(
        u_cmd,
        Value::List(vec![
            "write".into(),
            "u-file".into(),
            Value::Bytes(b"mine".to_vec().into()),
        ]),
    );
    kernel.run();

    // v tries to write u's file with *its own* grant handle: the server
    // sees V(uG) = 3 and refuses.
    kernel.inject(
        v_cmd,
        Value::List(vec![
            "write".into(),
            "u-file".into(),
            Value::Bytes(b"overwrite".to_vec().into()),
        ]),
    );
    // u (or anyone) writing without naming the credential is also refused.
    kernel.inject(
        u_cmd,
        Value::List(vec![
            "write-unproven".into(),
            "u-file".into(),
            Value::Bytes(b"oops".to_vec().into()),
        ]),
    );
    kernel.run();

    // Verify the content through u's own read path.
    let contents = Arc::new(Mutex::new(None));
    let c2 = contents.clone();
    kernel.spawn(
        "auditor",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.set_env("p", Value::Handle(p));
                // The auditor accepts any taint (out-of-band trusted reader).
                sys.publish_env("audit.port", Value::Handle(p));
            },
            move |_sys, msg| {
                if let Some(FsMsg::ReadR { data, .. }) = FsMsg::from_value(&msg.body) {
                    *c2.lock().unwrap() = data;
                }
            },
        ),
    );
    let auditor = kernel.find_process("auditor").unwrap();
    kernel.set_process_labels(auditor, None, Some(Label::top()));
    let audit_port = kernel
        .global_env("audit.port")
        .unwrap()
        .as_handle()
        .unwrap();
    kernel.inject(
        fs.port,
        FsMsg::Read {
            name: "u-file".into(),
            reply: audit_port,
        }
        .to_value(),
    );
    kernel.run();
    assert_eq!(contents.lock().unwrap().as_deref(), Some(&b"mine"[..]));
}

#[test]
fn system_files_mandatory_integrity() {
    // §5.4: "The file server can allocate a compartment, s, and require
    // V(s) ≤ 1 for writes to system files. Setting the network daemon's
    // send label to {s 2, 1} then ensures that no process contaminated with
    // data from the network can overwrite system files."
    let mut kernel = Kernel::new(53);
    let fs = spawn_fs(&mut kernel);
    kernel.inject(
        fs.port,
        FsMsg::CreateSystem {
            name: "passwd".into(),
        }
        .to_value(),
    );
    kernel.run();

    // A clean system daemon: writes with V = {s 1, 3}; its E_S(s) = 1 ≤ 1
    // passes both the kernel check and the server check.
    let s = fs.system;
    kernel.spawn(
        "clean-daemon",
        Category::Other,
        service_with_start(
            move |sys| {
                let fs_port = sys.env("fs.port").unwrap().as_handle().unwrap();
                let v = Label::from_pairs(Level::L3, &[(s, Level::L1)]);
                sys.send_args(
                    fs_port,
                    FsMsg::Write {
                        name: "passwd".into(),
                        data: b"root:x:0".to_vec().into(),
                        reply: None,
                    }
                    .to_value(),
                    &SendArgs::new().verify(v),
                )
                .unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();

    // A network-contaminated daemon ({s 2, 1}): the same write is dropped
    // *by the kernel* — E_S(s) = 2 ⋢ V(s) = 1.
    let drops_before = kernel.stats().dropped_label_check;
    kernel.spawn(
        "netd-like",
        Category::Network,
        service_with_start(
            move |sys| {
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(s, Level::L2)]));
                let fs_port = sys.env("fs.port").unwrap().as_handle().unwrap();
                let v = Label::from_pairs(Level::L3, &[(s, Level::L1)]);
                sys.send_args(
                    fs_port,
                    FsMsg::Write {
                        name: "passwd".into(),
                        data: b"evil".to_vec().into(),
                        reply: None,
                    }
                    .to_value(),
                    &SendArgs::new().verify(v),
                )
                .unwrap();
                // Without the verification label the message arrives, but
                // the server refuses: V defaults to {3}, and 3 > 1.
                sys.send(
                    fs_port,
                    FsMsg::Write {
                        name: "passwd".into(),
                        data: b"evil2".to_vec().into(),
                        reply: None,
                    }
                    .to_value(),
                )
                .unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(kernel.stats().dropped_label_check, drops_before + 1);

    // Contents are still the clean daemon's.
    let contents = Arc::new(Mutex::new(None));
    let c2 = contents.clone();
    kernel.spawn(
        "auditor",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("audit.port", Value::Handle(p));
            },
            move |_sys, msg| {
                if let Some(FsMsg::ReadR { data, .. }) = FsMsg::from_value(&msg.body) {
                    *c2.lock().unwrap() = data;
                }
            },
        ),
    );
    let audit_port = kernel
        .global_env("audit.port")
        .unwrap()
        .as_handle()
        .unwrap();
    kernel.inject(
        fs.port,
        FsMsg::Read {
            name: "passwd".into(),
            reply: audit_port,
        }
        .to_value(),
    );
    kernel.run();
    assert_eq!(contents.lock().unwrap().as_deref(), Some(&b"root:x:0"[..]));
}

#[test]
fn server_stays_unconta_minated_across_users() {
    // FS_S keeps ⋆ for every user no matter how much tainted traffic it
    // handles (§5.3's file-server labels).
    let mut kernel = Kernel::new(54);
    let fs = spawn_fs(&mut kernel);
    let u_cmd = spawn_shell(&mut kernel, "u-shell");
    let v_cmd = spawn_shell(&mut kernel, "v-shell");
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "fu".into(),
            user: "u-shell".into(),
        }
        .to_value(),
    );
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "fv".into(),
            user: "v-shell".into(),
        }
        .to_value(),
    );
    kernel.run();
    for (cmd, file) in [(u_cmd, "fu"), (v_cmd, "fv")] {
        kernel.inject(
            cmd,
            Value::List(vec![
                "write".into(),
                file.into(),
                Value::Bytes(b"data".to_vec().into()),
            ]),
        );
        kernel.inject(cmd, Value::List(vec!["read".into(), file.into()]));
    }
    kernel.run();

    let fs_proc = kernel.process(fs.pid);
    let u_shell = kernel.find_process("u-shell").unwrap();
    let v_shell = kernel.find_process("v-shell").unwrap();
    let ut = kernel
        .process(u_shell)
        .env
        .get("taint")
        .unwrap()
        .as_handle()
        .unwrap();
    let vt = kernel
        .process(v_shell)
        .env
        .get("taint")
        .unwrap()
        .as_handle()
        .unwrap();
    assert_eq!(fs_proc.send_label.get(ut), Level::Star);
    assert_eq!(fs_proc.send_label.get(vt), Level::Star);
    // And the shells each carry exactly their own taint.
    assert_eq!(kernel.process(u_shell).send_label.get(ut), Level::L3);
    assert_eq!(kernel.process(u_shell).send_label.get(vt), Level::L1);
    assert_eq!(kernel.process(v_shell).send_label.get(vt), Level::L3);
    assert_eq!(kernel.process(v_shell).send_label.get(ut), Level::L1);
}
