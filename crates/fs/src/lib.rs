//! # asbestos-fs
//!
//! The labeled multi-user file server that §5.2–§5.4 of the Asbestos paper
//! use as their running example: taint-on-read (file data returns
//! contaminated with the owner's `uT 3`), discretionary integrity (writes
//! require the verification-label proof `V(uG) ≤ 0`), and mandatory
//! integrity for system files via a dedicated compartment (`V(s) ≤ 1`,
//! excluding network-contaminated processes at the kernel).

pub mod proto;
pub mod server;

pub use proto::FsMsg;
pub use server::{spawn_fs, FileServer, FsHandle, FS_PORT_ENV, FS_SYSTEM_COMPARTMENT_ENV};
