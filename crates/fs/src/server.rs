//! The trusted multi-user file server of §5.2–§5.4.
//!
//! The server holds `⋆` for every user's taint handle, so it "can accept
//! requests from any user without fear of contamination and can declassify
//! user data as appropriate" — its labels are
//!
//! ```text
//! FS_S = {u₁T ⋆, u₂T ⋆, …, 1}      FS_R = {u₁T 3, u₂T 3, …, 2}
//! ```
//!
//! Reads return data contaminated with the owner's `uT 3`; writes to owned
//! files require the §5.4 discretionary integrity proof `V(uG) ≤ 0`; system
//! files use the mandatory-integrity compartment `s` with writes requiring
//! `V(s) ≤ 1`, so any process contaminated by the network (send label
//! `{s 2, 1}`) is excluded *by the kernel*.

use std::collections::BTreeMap;

use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, Payload, ProcessId, SendArgs, Service, Sys,
    Value,
};

use crate::proto::FsMsg;

/// Environment key where the file server publishes its request port.
pub const FS_PORT_ENV: &str = "fs.port";

/// Environment key where the file server publishes the system-integrity
/// compartment handle `s` (so infrastructure can taint e.g. netd with
/// `{s 2, 1}`).
pub const FS_SYSTEM_COMPARTMENT_ENV: &str = "fs.system";

struct UserSec {
    taint: Handle,
    grant: Handle,
}

enum Owner {
    /// Public file: no taint, no write protection.
    Public,
    /// Owned by a registered user.
    User(String),
    /// System file: mandatory integrity via the `s` compartment.
    System,
}

struct File {
    owner: Owner,
    // Stored as a shared payload: a READ_R reply clones the refcount, so
    // serving a file never copies its contents.
    data: Payload,
}

/// The file-server service.
pub struct FileServer {
    users: BTreeMap<String, UserSec>,
    files: BTreeMap<String, File>,
    system: Option<Handle>,
    port: Option<Handle>,
}

impl FileServer {
    /// Creates an empty file server.
    pub fn new() -> FileServer {
        FileServer {
            users: BTreeMap::new(),
            files: BTreeMap::new(),
            system: None,
            port: None,
        }
    }

    fn user_of(&self, name: &str) -> Option<&UserSec> {
        self.users.get(name)
    }

    fn write_allowed(&self, file: &File, verify: &Label) -> bool {
        match &file.owner {
            Owner::Public => true,
            // §5.4: a write to u's file must prove V(uG) ≤ 0.
            Owner::User(u) => match self.user_of(u) {
                Some(sec) => verify.get(sec.grant) <= Level::L0,
                None => false,
            },
            // §5.4: system files require V(s) ≤ 1.
            Owner::System => {
                let s = self.system.expect("system compartment exists");
                verify.get(s) <= Level::L1
            }
        }
    }
}

impl Default for FileServer {
    fn default() -> FileServer {
        FileServer::new()
    }
}

impl Service for FileServer {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(FS_PORT_ENV, Value::Handle(port));
        self.port = Some(port);
        // The mandatory-integrity compartment for system files.
        let s = sys.new_handle();
        sys.publish_env(FS_SYSTEM_COMPARTMENT_ENV, Value::Handle(s));
        self.system = Some(s);
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        let Some(fs_msg) = FsMsg::from_value(&msg.body) else {
            return;
        };
        sys.charge(8_000); // request parsing / table lookups
        match fs_msg {
            FsMsg::AddUser { user, reply } => {
                let sec = self.users.entry(user).or_insert_with(|| {
                    let taint = sys.new_handle();
                    let grant = sys.new_handle();
                    // FS_R gains uT 3: the server may receive u's data.
                    sys.raise_recv(taint, Level::L3)
                        .expect("the server created uT and holds ⋆");
                    UserSec { taint, grant }
                });
                // Set the session up as Figure 2's shells: it *speaks for*
                // the user (uG 0 — deliberately not ⋆, so the privilege is
                // mandatory and decays on low-integrity input, §5.4) and may
                // *receive* the user's data (receive label raised to uT 3).
                // Declassification privilege stays with the server alone.
                let ds = Label::from_pairs(Level::L3, &[(sec.grant, Level::L0)]);
                let dr = Label::from_pairs(Level::Star, &[(sec.taint, Level::L3)]);
                let _ = sys.send_args(
                    reply,
                    FsMsg::AddUserR {
                        taint: sec.taint,
                        grant: sec.grant,
                    }
                    .to_value(),
                    &SendArgs::new().grant(ds).raise_recv(dr),
                );
            }
            FsMsg::Create { name, user } => {
                let owner = if user.is_empty() {
                    Owner::Public
                } else if self.users.contains_key(&user) {
                    Owner::User(user)
                } else {
                    return; // unknown owner: refuse silently
                };
                self.files.insert(
                    name,
                    File {
                        owner,
                        data: Payload::new(),
                    },
                );
            }
            FsMsg::CreateSystem { name } => {
                self.files.insert(
                    name,
                    File {
                        owner: Owner::System,
                        data: Payload::new(),
                    },
                );
            }
            FsMsg::Read { name, reply } => {
                let (data, contaminate) = match self.files.get(&name) {
                    Some(file) => {
                        let cs = match &file.owner {
                            Owner::User(u) => self.user_of(u).map(|sec| {
                                Label::from_pairs(Level::Star, &[(sec.taint, Level::L3)])
                            }),
                            _ => None,
                        };
                        (Some(file.data.clone()), cs)
                    }
                    None => (None, None),
                };
                let mut args = SendArgs::new();
                if let Some(cs) = contaminate {
                    // §5.2 discretionary contamination: the reply carries
                    // the owner's taint; the server itself stays at ⋆.
                    args = args.contaminate(cs);
                }
                let _ = sys.send_args(reply, FsMsg::ReadR { name, data }.to_value(), &args);
            }
            FsMsg::Write { name, data, reply } => {
                let ok = match self.files.get(&name) {
                    Some(file) => self.write_allowed(file, &msg.verify),
                    None => false,
                };
                if ok {
                    self.files
                        .get_mut(&name)
                        .expect("existence checked above")
                        .data = data;
                }
                if let Some(reply) = reply {
                    // The reply is contaminated like a read would be: the
                    // ok/failure bit for an owned file is u's business.
                    let args = match self.files.get(&name).map(|f| &f.owner) {
                        Some(Owner::User(u)) => match self.user_of(u) {
                            Some(sec) => SendArgs::new().contaminate(Label::from_pairs(
                                Level::Star,
                                &[(sec.taint, Level::L3)],
                            )),
                            None => SendArgs::new(),
                        },
                        _ => SendArgs::new(),
                    };
                    let _ = sys.send_args(reply, FsMsg::WriteR { name, ok }.to_value(), &args);
                }
            }
            // Replies are never sent *to* the server.
            FsMsg::AddUserR { .. } | FsMsg::ReadR { .. } | FsMsg::WriteR { .. } => {}
        }
    }
}

/// Spawn info for a running file server.
pub struct FsHandle {
    /// The server's process id.
    pub pid: ProcessId,
    /// Its request port.
    pub port: Handle,
    /// The system-integrity compartment `s`.
    pub system: Handle,
}

/// Spawns the file server into a kernel.
pub fn spawn_fs(kernel: &mut Kernel) -> FsHandle {
    let pid = kernel.spawn("fs", Category::Other, Box::new(FileServer::new()));
    let port = kernel
        .global_env(FS_PORT_ENV)
        .and_then(|v| v.as_handle())
        .expect("fs publishes its port");
    let system = kernel
        .global_env(FS_SYSTEM_COMPARTMENT_ENV)
        .and_then(|v| v.as_handle())
        .expect("fs publishes the system compartment");
    FsHandle { pid, port, system }
}
