//! The file-server protocol, inspired by Plan 9's 9P as §4 notes:
//! "to read a file, for example, the client sends a READ message to the
//! fileserver's port and awaits the corresponding READ_R reply."

use asbestos_kernel::{Handle, Payload, Value};

/// A message in the file-server protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsMsg {
    /// Register a user; the server creates taint/grant handles and replies
    /// [`FsMsg::AddUserR`] to `reply`, granting both handles at `⋆`.
    AddUser {
        /// Username.
        user: String,
        /// Reply port.
        reply: Handle,
    },
    /// Reply to `AddUser`: the user's taint and grant handles.
    AddUserR {
        /// The user's taint handle `uT`.
        taint: Handle,
        /// The user's grant handle `uG`.
        grant: Handle,
    },
    /// Create a file owned by `user` (empty string = public file).
    Create {
        /// File name.
        name: String,
        /// Owning user, or empty for public.
        user: String,
    },
    /// Read a file; the server replies [`FsMsg::ReadR`] to `reply`,
    /// contaminated with the owner's taint at 3.
    Read {
        /// File name.
        name: String,
        /// Reply port.
        reply: Handle,
    },
    /// Reply to `Read`.
    ReadR {
        /// File name.
        name: String,
        /// Contents (shared with the server's stored copy); `None` if the
        /// file does not exist.
        data: Option<Payload>,
    },
    /// Write a file. For owned files the sender must prove it speaks for
    /// the owner with `V(uG) ≤ 0` (§5.4); for system files, `V(s) ≤ 1`.
    Write {
        /// File name.
        name: String,
        /// New contents.
        data: Payload,
        /// Optional reply port for [`FsMsg::WriteR`].
        reply: Option<Handle>,
    },
    /// Reply to `Write`.
    WriteR {
        /// File name.
        name: String,
        /// Whether the write was accepted.
        ok: bool,
    },
    /// Create a system file (integrity-protected by the `s` compartment).
    CreateSystem {
        /// File name.
        name: String,
    },
}

impl FsMsg {
    /// Encodes to a [`Value`] payload.
    pub fn to_value(&self) -> Value {
        match self {
            FsMsg::AddUser { user, reply } => Value::List(vec![
                Value::Str("add-user".into()),
                Value::Str(user.clone()),
                Value::Handle(*reply),
            ]),
            FsMsg::AddUserR { taint, grant } => Value::List(vec![
                Value::Str("add-user-r".into()),
                Value::Handle(*taint),
                Value::Handle(*grant),
            ]),
            FsMsg::Create { name, user } => Value::List(vec![
                Value::Str("create".into()),
                Value::Str(name.clone()),
                Value::Str(user.clone()),
            ]),
            FsMsg::Read { name, reply } => Value::List(vec![
                Value::Str("read".into()),
                Value::Str(name.clone()),
                Value::Handle(*reply),
            ]),
            FsMsg::ReadR { name, data } => Value::List(vec![
                Value::Str("read-r".into()),
                Value::Str(name.clone()),
                match data {
                    Some(d) => Value::Bytes(d.clone()),
                    None => Value::Unit,
                },
            ]),
            FsMsg::Write { name, data, reply } => Value::List(vec![
                Value::Str("write".into()),
                Value::Str(name.clone()),
                Value::Bytes(data.clone()),
                match reply {
                    Some(r) => Value::Handle(*r),
                    None => Value::Unit,
                },
            ]),
            FsMsg::WriteR { name, ok } => Value::List(vec![
                Value::Str("write-r".into()),
                Value::Str(name.clone()),
                Value::Bool(*ok),
            ]),
            FsMsg::CreateSystem { name } => Value::List(vec![
                Value::Str("create-system".into()),
                Value::Str(name.clone()),
            ]),
        }
    }

    /// Decodes from a [`Value`] payload.
    pub fn from_value(value: &Value) -> Option<FsMsg> {
        let items = value.as_list()?;
        match items.first()?.as_str()? {
            "add-user" => Some(FsMsg::AddUser {
                user: items.get(1)?.as_str()?.to_string(),
                reply: items.get(2)?.as_handle()?,
            }),
            "add-user-r" => Some(FsMsg::AddUserR {
                taint: items.get(1)?.as_handle()?,
                grant: items.get(2)?.as_handle()?,
            }),
            "create" => Some(FsMsg::Create {
                name: items.get(1)?.as_str()?.to_string(),
                user: items.get(2)?.as_str()?.to_string(),
            }),
            "read" => Some(FsMsg::Read {
                name: items.get(1)?.as_str()?.to_string(),
                reply: items.get(2)?.as_handle()?,
            }),
            "read-r" => Some(FsMsg::ReadR {
                name: items.get(1)?.as_str()?.to_string(),
                data: match items.get(2)? {
                    Value::Bytes(b) => Some(b.clone()),
                    _ => None,
                },
            }),
            "write" => Some(FsMsg::Write {
                name: items.get(1)?.as_str()?.to_string(),
                data: items.get(2)?.as_payload()?.clone(),
                reply: items.get(3).and_then(|v| v.as_handle()),
            }),
            "write-r" => Some(FsMsg::WriteR {
                name: items.get(1)?.as_str()?.to_string(),
                ok: items.get(2)?.as_bool()?,
            }),
            "create-system" => Some(FsMsg::CreateSystem {
                name: items.get(1)?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Handle::from_raw(7);
        let msgs = vec![
            FsMsg::AddUser {
                user: "u".into(),
                reply: h,
            },
            FsMsg::AddUserR { taint: h, grant: h },
            FsMsg::Create {
                name: "f".into(),
                user: "u".into(),
            },
            FsMsg::Read {
                name: "f".into(),
                reply: h,
            },
            FsMsg::ReadR {
                name: "f".into(),
                data: Some(vec![1].into()),
            },
            FsMsg::ReadR {
                name: "f".into(),
                data: None,
            },
            FsMsg::Write {
                name: "f".into(),
                data: vec![2].into(),
                reply: Some(h),
            },
            FsMsg::Write {
                name: "f".into(),
                data: Payload::new(),
                reply: None,
            },
            FsMsg::WriteR {
                name: "f".into(),
                ok: true,
            },
            FsMsg::CreateSystem {
                name: "passwd".into(),
            },
        ];
        for m in msgs {
            assert_eq!(FsMsg::from_value(&m.to_value()), Some(m));
        }
    }
}
