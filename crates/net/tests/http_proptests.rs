//! Property tests for the HTTP layer: build→parse roundtrips and
//! no-panic guarantees on arbitrary input.

use asbestos_net::http::{build_response, parse_query, parse_request};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,12}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request(&bytes);
    }

    #[test]
    fn query_parser_never_panics(s in "\\PC{0,128}") {
        let _ = parse_query(&s);
    }

    #[test]
    fn request_roundtrip(
        method in arb_token(),
        path in "[a-z]{1,10}",
        params in prop::collection::vec((arb_token(), arb_token()), 0..5),
        headers in prop::collection::vec((arb_token(), arb_token()), 0..4),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let query: String = params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&");
        let target = if query.is_empty() {
            format!("/{path}")
        } else {
            format!("/{path}?{query}")
        };
        let mut raw = format!("{method} {target} HTTP/1.0\r\n");
        for (k, v) in &headers {
            raw.push_str(&format!("{k}: {v}\r\n"));
        }
        raw.push_str("\r\n");
        let mut raw = raw.into_bytes();
        raw.extend_from_slice(&body);

        let req = parse_request(&raw).expect("well-formed request parses");
        prop_assert_eq!(&req.method, &method);
        prop_assert_eq!(&req.path, &format!("/{path}"));
        prop_assert_eq!(req.service(), path.as_str());
        prop_assert_eq!(&req.body, &body);
        for (k, v) in &params {
            // Duplicate keys resolve to the first occurrence.
            let first = params.iter().find(|(pk, _)| pk == k).map(|(_, pv)| pv.as_str());
            prop_assert_eq!(req.param(k), first);
            let _ = v;
        }
        for (k, v) in &headers {
            // Duplicate header keys resolve to the last occurrence.
            let last = headers
                .iter()
                .rev()
                .find(|(hk, _)| hk.eq_ignore_ascii_case(k))
                .map(|(_, hv)| hv.as_str());
            prop_assert_eq!(req.headers.get(&k.to_ascii_lowercase()).map(String::as_str), last);
            let _ = v;
        }
    }

    #[test]
    fn response_shape(status in 100u16..600, body in prop::collection::vec(any::<u8>(), 0..256)) {
        let resp = build_response(status, "Reason", &body);
        // Head terminator present, body intact after it.
        let head_end = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        prop_assert_eq!(&resp[head_end..], &body[..]);
        let head = std::str::from_utf8(&resp[..head_end]).unwrap();
        let status_line = format!("HTTP/1.0 {} ", status);
        let content_length = format!("Content-Length: {:>5}", body.len());
        prop_assert!(head.starts_with(&status_line));
        prop_assert!(head.contains(&content_length));
    }
}
