//! Taint invariance across netd lanes, pinned golden-trace style.
//!
//! §7.2 step 5's contract — "when a process tells netd to add a taint
//! handle to a connection, later messages sent in response to operations
//! on that connection will be contaminated with the taint handle at
//! level 3" — must be *lane-invariant*: which lane the RSS demux hashes a
//! connection to may never change a connection's taint labels or any
//! Figure 4 verdict on its traffic. This test drives a canonical tainted
//! workload (per-connection taint registration, a tainted attacker whose
//! writes every configuration must drop, and a rightful response per
//! connection) and reduces the observables — per-connection response
//! bytes, the owning lane's `uT` privileges, lane isolation, and the
//! label-check verdict count — to one FNV trace hash, the
//! `shard_determinism.rs` technique.
//!
//! The single-lane hash is pinned as a golden constant: `lanes = 1` runs
//! the identical code path the pre-lane netd did, and multi-lane
//! configurations must reproduce the same trace bit for bit.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs, Value};
use asbestos_net::{rss_lane, spawn_netd_lanes, ClientDriver, NetMsg};

const CONNS: usize = 12;
const TCP_PORT: u16 = 80;

fn star_grant(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

fn taint3(h: Handle) -> Label {
    Label::from_pairs(Level::Star, &[(h, Level::L3)])
}

/// FNV-1a over the canonical observables.
struct TraceHash(u64);

impl TraceHash {
    fn new() -> TraceHash {
        TraceHash(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Runs the canonical tainted workload; returns the trace hash.
fn run_tainted_workload(shards: usize, lanes: usize) -> u64 {
    let mut kernel = Kernel::new_sharded(0x7A17, shards);
    let netd = spawn_netd_lanes(&mut kernel, lanes);
    assert_eq!(
        asbestos_net::netd_lanes(&kernel),
        lanes,
        "the deployment announces its lane count (1 when the env is absent)"
    );
    let mut driver = ClientDriver::new(&netd);

    // index → (uC, uT); filled during phase A, read by phase B and the
    // final label audit.
    type ConnTable = Arc<Mutex<BTreeMap<u64, (Handle, Handle)>>>;
    let conns: ConnTable = Arc::new(Mutex::new(BTreeMap::new()));

    // The tainted attacker: carries its own user's taint and tries to
    // write on every connection it is handed. Figure 4 must drop every
    // attempt — the connections' port labels exclude its compartment.
    kernel.spawn(
        "attacker",
        Category::Okws,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("attacker.port", Value::Handle(p));
                let vt = sys.new_handle();
                sys.self_contaminate(&taint3(vt));
            },
            |sys, msg| {
                if let Some(uc) = msg.body.as_handle() {
                    sys.send(
                        uc,
                        NetMsg::Write {
                            bytes: b"stolen".to_vec().into(),
                        }
                        .to_value(),
                    )
                    .unwrap();
                }
            },
        ),
    );

    // The trusted front end (ok-demux stand-in). Phase A (per NewConn):
    // peek the request head to learn the connection's index, register the
    // user taint with the owning lane, and leak the capability to the
    // attacker. Phase B (external trigger per index): read the request in
    // full and respond over the tainted connection.
    let state = conns.clone();
    kernel.spawn(
        "frontend",
        Category::Okws,
        service_with_start(
            move |sys| {
                let notify = sys.new_port(Label::top());
                sys.set_port_label(notify, Label::top()).unwrap();
                let control = sys.new_port(Label::top());
                sys.set_port_label(control, Label::top()).unwrap();
                sys.publish_env("frontend.control", Value::Handle(control));
                asbestos_net::listen_all_lanes(sys, TCP_PORT, notify);
            },
            move |sys, msg| match NetMsg::from_value(&msg.body) {
                Some(NetMsg::NewConn { port: uc }) => {
                    // Peek the head to learn which scripted connection
                    // this is (arrival order is lane-dependent; request
                    // bytes are not).
                    let reply = sys.new_port(Label::top());
                    sys.set_port_label(reply, Label::top()).unwrap();
                    sys.set_env(&format!("peek.{}", reply.raw()), Value::Handle(uc));
                    sys.send_args(
                        uc,
                        NetMsg::Read {
                            max: 64,
                            reply,
                            peek: true,
                        }
                        .to_value(),
                        &SendArgs::new().grant(star_grant(reply)),
                    )
                    .unwrap();
                }
                Some(NetMsg::ReadR { bytes }) => {
                    if let Some(uc) = sys
                        .env(&format!("peek.{}", msg.port.raw()))
                        .and_then(|v| v.as_handle())
                    {
                        // Phase A continued: "req-{i}" identifies the
                        // connection; mint its user taint and register it
                        // with the owning lane.
                        let text = String::from_utf8_lossy(&bytes).to_string();
                        let i: u64 = text
                            .strip_prefix("req-")
                            .and_then(|s| s.parse().ok())
                            .expect("scripted request head");
                        let ut = sys.new_handle();
                        state.lock().unwrap().insert(i, (uc, ut));
                        sys.send_args(
                            uc,
                            NetMsg::AddTaint { taint: ut }.to_value(),
                            &SendArgs::new().grant(star_grant(ut)),
                        )
                        .unwrap();
                        sys.raise_recv(ut, Level::L3).unwrap();
                        // Leak uC to the attacker (a compromised-demux
                        // model): the label system, not capability
                        // hygiene, must protect the connection.
                        let attacker = sys.env("attacker.port").unwrap().as_handle().unwrap();
                        sys.send_args(
                            attacker,
                            Value::Handle(uc),
                            &SendArgs::new().grant(star_grant(uc)),
                        )
                        .unwrap();
                    } else {
                        // Phase B reply: the full request; respond on the
                        // tainted connection and close it.
                        let uc = sys
                            .env(&format!("full.{}", msg.port.raw()))
                            .and_then(|v| v.as_handle())
                            .expect("full read maps back to its connection");
                        let mut out = b"RESP:".to_vec();
                        out.extend(bytes.to_ascii_uppercase());
                        out.extend(b":OK");
                        sys.send(uc, NetMsg::Write { bytes: out.into() }.to_value())
                            .unwrap();
                        sys.send(uc, NetMsg::Close.to_value()).unwrap();
                    }
                }
                _ => {
                    // Phase B trigger: Value::U64(i) on the control port.
                    if let Some(i) = msg.body.as_u64() {
                        let uc = state.lock().unwrap()[&i].0;
                        let reply = sys.new_port(Label::top());
                        sys.set_port_label(reply, Label::top()).unwrap();
                        sys.set_env(&format!("full.{}", reply.raw()), Value::Handle(uc));
                        sys.send_args(
                            uc,
                            NetMsg::Read {
                                max: 64,
                                reply,
                                peek: false,
                            }
                            .to_value(),
                            &SendArgs::new().grant(star_grant(reply)),
                        )
                        .unwrap();
                    }
                }
            },
        ),
    );

    // Startup settles (cross-shard LISTENs land), then phase A: all
    // connections arrive, get tainted, and survive the attacker.
    kernel.run();
    for i in 0..CONNS {
        driver.open(&mut kernel, TCP_PORT, format!("req-{i}").as_bytes());
    }
    kernel.run();
    let dropped_after_attack = kernel.stats().dropped_label_check;

    // Phase B: each connection is read in full and answered.
    let control = kernel.global_env_handle("frontend.control").unwrap();
    for i in 0..CONNS {
        kernel.inject(control, Value::U64(i as u64));
    }
    kernel.run();
    driver.poll(&kernel);

    // ---- Reduce the observables to the trace hash. ----
    let mut h = TraceHash::new();
    assert_eq!(driver.completed(), CONNS);
    let table = conns.lock().unwrap();
    for i in 0..CONNS {
        let req = driver.request(i);
        let expected = format!("RESP:REQ-{i}:OK");
        assert_eq!(
            req.response,
            expected.as_bytes(),
            "connection {i} response at shards={shards} lanes={lanes}"
        );
        let (_uc, ut) = table[&(i as u64)];
        // The owning lane — and only the owning lane — holds uT ⋆ (its
        // own privilege survived the taint) and accepts uT 3 traffic.
        let lane = rss_lane(req.conn, TCP_PORT, lanes);
        for (l, info) in netd.lanes.iter().enumerate() {
            let p = kernel.process(info.pid);
            let send = p.send_label.get(ut);
            let recv = p.recv_label.get(ut);
            if l == lane {
                assert_eq!(send, Level::Star, "owning lane keeps uT ⋆");
                assert_eq!(recv, Level::L3, "owning lane accepts uT 3");
            } else {
                assert_ne!(recv, Level::L3, "lane {l} must not learn conn {i}'s taint");
            }
        }
        h.eat(&(i as u64).to_le_bytes());
        h.eat(&req.response);
        h.eat(b"own-lane:*3");
    }
    // Figure 4 verdicts: exactly one label-check drop per connection (the
    // attacker's write), in every configuration.
    assert_eq!(
        dropped_after_attack, CONNS as u64,
        "attacker writes dropped at shards={shards} lanes={lanes}"
    );
    h.eat(&dropped_after_attack.to_le_bytes());
    assert_eq!(kernel.queue_len(), 0);
    h.0
}

/// Golden constant recorded from the single-netd configuration; see the
/// module docs. `lanes = 1` must match it forever.
const GOLDEN_SINGLE_NETD_TRACE: u64 = 0x27C8_02D3_F903_2323;

#[test]
fn single_lane_matches_golden_trace() {
    assert_eq!(run_tainted_workload(1, 1), GOLDEN_SINGLE_NETD_TRACE);
}

#[test]
fn taint_rule_is_lane_invariant() {
    // Every lane configuration reproduces the identical taint trace —
    // which lane a connection hashes to is unobservable in its labels.
    for (shards, lanes) in [(4, 1), (2, 2), (4, 2), (4, 4)] {
        assert_eq!(
            run_tainted_workload(shards, lanes),
            GOLDEN_SINGLE_NETD_TRACE,
            "trace diverged at shards={shards} lanes={lanes}"
        );
    }
}
