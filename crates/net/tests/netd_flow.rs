//! End-to-end netd tests: connection lifecycle, taint application, and the
//! port-label enforcement that §7.2 builds OKWS's isolation from.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs, Value};
use asbestos_net::{spawn_netd, ClientDriver, NetMsg, NETD_CONTROL_ENV};

fn star_grant(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

fn taint3(h: Handle) -> Label {
    Label::from_pairs(Level::Star, &[(h, Level::L3)])
}

#[test]
fn connection_notify_read_write_roundtrip() {
    let mut kernel = Kernel::new(101);
    let netd = spawn_netd(&mut kernel);
    let mut driver = ClientDriver::new(&netd);

    // An echo listener: on NewConn, READ the request; on ReadR, WRITE it
    // back uppercased and close.
    let conn_port = Arc::new(Mutex::new(None::<Handle>));
    let cp = conn_port.clone();
    kernel.spawn(
        "echo-listener",
        Category::Other,
        service_with_start(
            |sys| {
                let notify = sys.new_port(Label::top());
                sys.set_port_label(notify, Label::top()).unwrap();
                let reply = sys.new_port(Label::top());
                sys.set_port_label(reply, Label::top()).unwrap();
                sys.set_env("reply", Value::Handle(reply));
                let control = sys.env(NETD_CONTROL_ENV).unwrap().as_handle().unwrap();
                sys.send(
                    control,
                    NetMsg::Listen {
                        tcp_port: 80,
                        notify,
                    }
                    .to_value(),
                )
                .unwrap();
            },
            move |sys, msg| match NetMsg::from_value(&msg.body) {
                Some(NetMsg::NewConn { port }) => {
                    *cp.lock().unwrap() = Some(port);
                    let reply = sys.env("reply").unwrap().as_handle().unwrap();
                    // Grant netd ⋆ for the reply port alongside the READ.
                    sys.send_args(
                        port,
                        NetMsg::Read {
                            max: 4096,
                            reply,
                            peek: false,
                        }
                        .to_value(),
                        &SendArgs::new().grant(star_grant(reply)),
                    )
                    .unwrap();
                }
                Some(NetMsg::ReadR { bytes }) => {
                    let port = cp.lock().unwrap().expect("ReadR follows NewConn");
                    let upper: Vec<u8> = bytes.to_ascii_uppercase();
                    sys.send(
                        port,
                        NetMsg::Write {
                            bytes: upper.into(),
                        }
                        .to_value(),
                    )
                    .unwrap();
                    sys.send(port, NetMsg::Close.to_value()).unwrap();
                }
                _ => {}
            },
        ),
    );

    driver.open(&mut kernel, 80, b"hello asbestos");
    kernel.run();
    driver.poll(&kernel);

    assert_eq!(driver.completed(), 1);
    assert_eq!(driver.request(0).response, b"HELLO ASBESTOS");
    assert!(driver.request(0).latency_cycles().unwrap() > 0);
    assert_eq!(kernel.stats().dropped_label_check, 0);
}

#[test]
fn unlistened_port_refuses_connections() {
    let mut kernel = Kernel::new(102);
    let netd = spawn_netd(&mut kernel);
    let mut driver = ClientDriver::new(&netd);
    driver.open(&mut kernel, 9999, b"GET / HTTP/1.0\r\n\r\n");
    kernel.run();
    driver.poll(&kernel);
    assert_eq!(driver.completed(), 0);
    assert!(!netd.net.lock().unwrap().is_open(driver.request(0).conn));
}

#[test]
fn tainted_replies_contaminate_and_port_label_opens_for_owner() {
    // The §7.2 step-5 mechanics: after AddTaint(uT), netd replies are
    // contaminated uT 3, uC's port label becomes {uC 0, uT 3, 2} so the
    // tainted worker can still write its own connection, and a worker
    // carrying a *different* user's taint cannot.
    let mut kernel = Kernel::new(103);
    let netd = spawn_netd(&mut kernel);
    let mut driver = ClientDriver::new(&netd);

    let state: Arc<Mutex<Option<(Handle, Handle)>>> = Arc::new(Mutex::new(None));

    // The trusted front end (ok-demux stand-in): owns uT, tells netd to
    // taint the connection, then hands uC to the worker with uT
    // contamination, as ok-demux does in step 6.
    let st = state.clone();
    kernel.spawn(
        "frontend",
        Category::Other,
        service_with_start(
            |sys| {
                let notify = sys.new_port(Label::top());
                sys.set_port_label(notify, Label::top()).unwrap();
                let control = sys.env(NETD_CONTROL_ENV).unwrap().as_handle().unwrap();
                sys.send(
                    control,
                    NetMsg::Listen {
                        tcp_port: 80,
                        notify,
                    }
                    .to_value(),
                )
                .unwrap();
            },
            move |sys, msg| {
                if let Some(NetMsg::NewConn { port: uc }) = NetMsg::from_value(&msg.body) {
                    let ut = sys.new_handle();
                    *st.lock().unwrap() = Some((uc, ut));
                    // Step 5: grant netd uT ⋆ and register the taint.
                    sys.send_args(
                        uc,
                        NetMsg::AddTaint { taint: ut }.to_value(),
                        &SendArgs::new().grant(star_grant(ut)),
                    )
                    .unwrap();
                    // Model a *compromised* worker for user v: it legitimately
                    // holds the uC ⋆ capability (say, from a demux bug) but
                    // carries v's taint. Send to it first so it attacks while
                    // the connection is still open.
                    let attacker = sys.env("attacker.port").unwrap().as_handle().unwrap();
                    sys.send_args(
                        attacker,
                        Value::Handle(uc),
                        &SendArgs::new().grant(star_grant(uc)),
                    )
                    .unwrap();
                    // Step 6: forward uC to the rightful worker, granting
                    // uC ⋆ and contaminating it with uT 3 (raising its
                    // receive label too).
                    let worker = sys.env("worker.port").unwrap().as_handle().unwrap();
                    sys.send_args(
                        worker,
                        Value::Handle(uc),
                        &SendArgs::new()
                            .grant(star_grant(uc))
                            .contaminate(taint3(ut))
                            .raise_recv(taint3(ut)),
                    )
                    .unwrap();
                }
            },
        ),
    );

    // The per-user worker: writes the response for its own user.
    kernel.spawn(
        "worker",
        Category::Okws,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("worker.port", Value::Handle(p));
            },
            |sys, msg| {
                if let Some(uc) = msg.body.as_handle() {
                    sys.send(
                        uc,
                        NetMsg::Write {
                            bytes: b"users-own-data".to_vec().into(),
                        }
                        .to_value(),
                    )
                    .unwrap();
                    sys.send(uc, NetMsg::Close.to_value()).unwrap();
                }
            },
        ),
    );

    // The attacker: tainted with a different user's compartment; tries to
    // write onto u's connection.
    kernel.spawn(
        "attacker",
        Category::Okws,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("attacker.port", Value::Handle(p));
                let vt = sys.new_handle();
                sys.self_contaminate(&taint3(vt));
            },
            |sys, msg| {
                if let Some(uc) = msg.body.as_handle() {
                    // send succeeds; delivery must be dropped by uC's label.
                    sys.send(
                        uc,
                        NetMsg::Write {
                            bytes: b"stolen".to_vec().into(),
                        }
                        .to_value(),
                    )
                    .unwrap();
                }
            },
        ),
    );

    driver.open(&mut kernel, 80, b"request-bytes");
    kernel.run();
    driver.poll(&kernel);

    // Only the rightful worker's bytes made it out.
    assert_eq!(driver.completed(), 1);
    assert_eq!(driver.request(0).response, b"users-own-data");
    assert!(
        kernel.stats().dropped_label_check >= 1,
        "attacker write dropped"
    );

    // And netd is still untainted for uT (it holds ⋆): its send label shows
    // uT at ⋆, so future users are unaffected.
    let (_uc, ut) = state.lock().unwrap().unwrap();
    let netd_proc = kernel.process(netd.pid);
    assert_eq!(netd_proc.send_label.get(ut), Level::Star);
}

#[test]
fn tainted_read_contaminates_reader() {
    // §7.7: "netd contaminates all data read from user u's connection with
    // uT 3" — a reader without uT ⋆ becomes tainted by the ReadR.
    let mut kernel = Kernel::new(104);
    let netd = spawn_netd(&mut kernel);
    let mut driver = ClientDriver::new(&netd);

    let reader_label = Arc::new(Mutex::new(None::<Level>));
    let rl = reader_label.clone();
    let reader = kernel.spawn(
        "reader",
        Category::Okws,
        service_with_start(
            |sys| {
                let notify = sys.new_port(Label::top());
                sys.set_port_label(notify, Label::top()).unwrap();
                let control = sys.env(NETD_CONTROL_ENV).unwrap().as_handle().unwrap();
                sys.send(
                    control,
                    NetMsg::Listen {
                        tcp_port: 80,
                        notify,
                    }
                    .to_value(),
                )
                .unwrap();
            },
            move |sys, msg| match NetMsg::from_value(&msg.body) {
                Some(NetMsg::NewConn { port: uc }) => {
                    // Taint our own connection, then read from it. We create
                    // uT ourselves (so we can AddTaint) but then *drop* the
                    // privilege to model an unprivileged reader.
                    let ut = sys.new_handle();
                    sys.set_env("ut", Value::Handle(ut));
                    sys.send_args(
                        uc,
                        NetMsg::AddTaint { taint: ut }.to_value(),
                        &SendArgs::new().grant(star_grant(ut)),
                    )
                    .unwrap();
                    // Keep the right to receive uT-tainted replies, then
                    // renounce declassification privilege: ⋆ → 1.
                    sys.raise_recv(ut, Level::L3).unwrap();
                    sys.self_contaminate(&Label::from_pairs(Level::Star, &[(ut, Level::L1)]));
                    let reply = sys.new_port(Label::top());
                    sys.set_port_label(reply, Label::top()).unwrap();
                    sys.send_args(
                        uc,
                        NetMsg::Read {
                            max: 4096,
                            reply,
                            peek: false,
                        }
                        .to_value(),
                        &SendArgs::new().grant(star_grant(reply)),
                    )
                    .unwrap();
                }
                Some(NetMsg::ReadR { .. }) => {
                    let ut = sys.env("ut").unwrap().as_handle().unwrap();
                    *rl.lock().unwrap() = Some(sys.send_label().get(ut));
                }
                _ => {}
            },
        ),
    );

    driver.open(&mut kernel, 80, b"secret");
    kernel.run();

    assert_eq!(
        *reader_label.lock().unwrap(),
        Some(Level::L3),
        "reader got tainted"
    );
    let _ = reader;
}
