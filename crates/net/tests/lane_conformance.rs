//! Multi-queue conformance: the per-connection event contract.
//!
//! The observable contract of the netd refactor (one lane per shard,
//! RSS-demuxed connections) is each connection's *event history*: the
//! order of reads and writes on one connection, and the bytes they carry,
//! must be exactly what the paper's single netd produced — for every lane
//! count. This property test drives random connection/message
//! interleavings through a chunked echo server and asserts the
//! per-connection response streams are identical at lanes ∈ {1, 2, 4}
//! (on a 4-shard kernel) and equal to the single-shard single-netd model.
//!
//! The echo server stamps every chunk it reads with a per-connection
//! sequence number before writing it back, so any per-connection
//! reordering — a read overtaking a read, a write overtaking a write —
//! changes the response bytes and fails the comparison.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs};
use asbestos_net::{listen_all_lanes, spawn_netd_lanes, ClientDriver, NetMsg};
use proptest::prelude::*;

fn star_grant(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

/// Per-connection state of the chunked echo server.
struct EchoConn {
    uc: Handle,
    seq: u64,
}

/// One generated workload: connection payloads (each ending in `!`), the
/// run epoch each connection opens in, and the server's read chunk size.
#[derive(Clone, Debug)]
struct Workload {
    payloads: Vec<Vec<u8>>,
    open_epoch: Vec<usize>,
    epochs: usize,
    chunk: u64,
}

/// Runs the workload on a kernel with the given shard and lane counts;
/// returns each connection's full response bytes, in open order.
fn run_workload(w: &Workload, shards: usize, lanes: usize) -> Vec<Vec<u8>> {
    let mut kernel = Kernel::new_sharded(0x1A7E, shards);
    let netd = spawn_netd_lanes(&mut kernel, lanes);
    let mut driver = ClientDriver::new(&netd);

    // The chunked echo server: reads `chunk` bytes at a time, writes each
    // chunk back as "[seq:CHUNK]", closes after the '!' terminator.
    let conns: Arc<Mutex<BTreeMap<Handle, EchoConn>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let chunk = w.chunk;
    let state = conns.clone();
    kernel.spawn(
        "chunked-echo",
        Category::Other,
        service_with_start(
            |sys| {
                let notify = sys.new_port(Label::top());
                sys.set_port_label(notify, Label::top()).unwrap();
                listen_all_lanes(sys, 80, notify);
            },
            move |sys, msg| match NetMsg::from_value(&msg.body) {
                Some(NetMsg::NewConn { port: uc }) => {
                    let reply = sys.new_port(Label::top());
                    sys.set_port_label(reply, Label::top()).unwrap();
                    state.lock().unwrap().insert(reply, EchoConn { uc, seq: 0 });
                    sys.send_args(
                        uc,
                        NetMsg::Read {
                            max: chunk,
                            reply,
                            peek: false,
                        }
                        .to_value(),
                        &SendArgs::new().grant(star_grant(reply)),
                    )
                    .unwrap();
                }
                Some(NetMsg::ReadR { bytes }) => {
                    let mut map = state.lock().unwrap();
                    let Some(conn) = map.get_mut(&msg.port) else {
                        return;
                    };
                    let uc = conn.uc;
                    let seq = conn.seq;
                    conn.seq += 1;
                    let done = bytes.is_empty() || bytes.contains(&b'!');
                    if done {
                        map.remove(&msg.port);
                    }
                    drop(map);
                    if !bytes.is_empty() {
                        let mut out = format!("[{seq}:").into_bytes();
                        out.extend(bytes.to_ascii_uppercase());
                        out.push(b']');
                        sys.send(uc, NetMsg::Write { bytes: out.into() }.to_value())
                            .unwrap();
                    }
                    if done {
                        sys.send(uc, NetMsg::Close.to_value()).unwrap();
                    } else {
                        sys.send_args(
                            uc,
                            NetMsg::Read {
                                max: chunk,
                                reply: msg.port,
                                peek: false,
                            }
                            .to_value(),
                            &SendArgs::new().grant(star_grant(msg.port)),
                        )
                        .unwrap();
                    }
                }
                _ => {}
            },
        ),
    );

    // Let startup settle (the LISTEN registrations may cross shards),
    // exactly as `Okws::start` does before serving traffic.
    kernel.run();

    // Interleave opens across run epochs exactly as generated.
    for epoch in 0..w.epochs {
        for (i, payload) in w.payloads.iter().enumerate() {
            if w.open_epoch[i] == epoch {
                driver.open(&mut kernel, 80, payload);
            }
        }
        kernel.run();
    }
    kernel.run();
    driver.poll(&kernel);

    assert_eq!(
        driver.completed(),
        w.payloads.len(),
        "every connection must finish at shards={shards} lanes={lanes}"
    );
    assert_eq!(kernel.queue_len(), 0);
    // Map driver request order (opens happened epoch by epoch) back to
    // payload index order.
    let mut order: Vec<usize> = Vec::new();
    for epoch in 0..w.epochs {
        for (i, _) in w.payloads.iter().enumerate() {
            if w.open_epoch[i] == epoch {
                order.push(i);
            }
        }
    }
    let mut responses = vec![Vec::new(); w.payloads.len()];
    for (req_idx, &payload_idx) in order.iter().enumerate() {
        responses[payload_idx] = driver.request(req_idx).response.clone();
    }
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-connection delivery order and payload bytes are identical at
    /// lanes ∈ {1, 2, 4} and equal to the single-netd model.
    #[test]
    fn per_connection_fifo_is_lane_invariant(
        bodies in prop::collection::vec("[a-z]{1,24}", 1..9),
        epoch_picks in prop::collection::vec(0usize..3, 1..9),
        chunk in 1u64..7,
    ) {
        let payloads: Vec<Vec<u8>> = bodies
            .iter()
            .map(|b| {
                let mut p = b.clone().into_bytes();
                p.push(b'!');
                p
            })
            .collect();
        let open_epoch: Vec<usize> = payloads
            .iter()
            .enumerate()
            .map(|(i, _)| epoch_picks[i % epoch_picks.len()])
            .collect();
        let w = Workload {
            payloads,
            open_epoch,
            epochs: 3,
            chunk,
        };

        // The single-netd model: one shard, one lane (the paper's build).
        let model = run_workload(&w, 1, 1);
        for (shards, lanes) in [(4, 1), (4, 2), (4, 4)] {
            let got = run_workload(&w, shards, lanes);
            prop_assert_eq!(
                &model, &got,
                "per-connection streams diverged at shards={} lanes={}",
                shards, lanes
            );
        }

        // And the model itself echoes every chunk in order.
        for (i, resp) in model.iter().enumerate() {
            let expected_chunks = (w.payloads[i].len() as u64).div_ceil(w.chunk);
            let seqs = resp.iter().filter(|&&b| b == b'[').count() as u64;
            prop_assert_eq!(seqs, expected_chunks);
        }
    }
}

/// The RSS demux must actually spread a realistic accept stream over the
/// lanes (no lane starved), while every lane count yields the same bytes.
#[test]
fn four_lanes_share_the_accept_stream() {
    let payloads: Vec<Vec<u8>> = (0..24).map(|i| format!("conn-{i}!").into_bytes()).collect();
    let open_epoch = vec![0; payloads.len()];
    let w = Workload {
        payloads,
        open_epoch,
        epochs: 1,
        chunk: 5,
    };

    let mut kernel = Kernel::new_sharded(7, 4);
    let netd = spawn_netd_lanes(&mut kernel, 4);
    let mut driver = ClientDriver::new(&netd);
    // No listener: connections are refused, but the demux decision has
    // already been recorded — which is all this test reads.
    for p in &w.payloads {
        driver.open(&mut kernel, 80, p);
    }
    kernel.run();
    let accepts = driver.lane_accepts().to_vec();
    assert_eq!(accepts.iter().sum::<u64>(), 24);
    assert!(
        accepts.iter().all(|&n| n > 0),
        "RSS demux starved a lane: {accepts:?}"
    );

    // Each lane owns its slice: lane i sits i shards after lane 0, one
    // lane per shard until the lanes wrap.
    let base = netd.lanes[0].pid.shard();
    for (lane, info) in netd.lanes.iter().enumerate() {
        assert_eq!(info.pid.shard(), (base + lane) % kernel.num_shards());
    }
}
