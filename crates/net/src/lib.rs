//! # asbestos-net
//!
//! The network substrate for the Asbestos reproduction: a simulated TCP
//! byte-stream layer ([`tcp::SimNet`], the LWIP substitute), the `netd`
//! process that is the system's privileged interface to the network
//! (§7.7) — runnable as a single process or as a multi-queue front end
//! of per-shard lanes with RSS connection demux ([`spawn_netd_lanes`],
//! [`tcp::rss_lane`]) — a minimal HTTP/1.0 implementation, and the
//! external client driver that plays the paper's load-generator box.
//!
//! The essential label behaviour reproduced here: netd wraps every TCP
//! connection in an Asbestos port `uC` with port label `{uC 0, 2}`, grants
//! `uC ⋆` to the registered listener, and — once a taint handle is attached
//! — contaminates every reply on that connection with `uT 3` while raising
//! `uC`'s port label to `{uC 0, uT 3, 2}` so the tainted worker can still
//! respond to its own user (§7.2).

pub mod driver;
pub mod http;
pub mod netd;
pub mod proto;
pub mod tcp;

pub use driver::{percentile, ClientDriver, ClientRequest};
pub use http::{build_response, ok_response, parse_request, HttpError, HttpRequest};
pub use netd::{
    listen_all_lanes, netd_control_env, netd_device_env, netd_lanes, spawn_netd, spawn_netd_lanes,
    Netd, NetdHandle, NetdLane, MAX_DEFERRED_ACCEPTS, NETD_CONTROL_ENV, NETD_DEVICE_ENV,
    NETD_LANES_ENV, NETD_SHED_ENV,
};
pub use proto::NetMsg;
pub use tcp::{rss_lane, ConnId, MultiQueue, SimConn, SimNet};
