//! The netd process: the privileged interface to the network (§7.7).
//!
//! netd owns the TCP substrate, wraps each connection in an Asbestos port
//! `uC`, and applies per-connection taint: "When a process tells netd to add
//! a taint handle to a connection, later messages sent in response to
//! operations on that connection will be contaminated with the taint handle
//! at level 3."
//!
//! ## Multi-queue lanes
//!
//! The paper runs netd as one process; this reproduction can run it as a
//! **multi-queue front end**: `lanes` full netd instances, lane `i` pinned
//! to kernel shard `i mod shards`, each owning the slice of the TCP
//! substrate whose connections the RSS demultiplexer
//! ([`crate::tcp::rss_lane`]) hashes to it. A connection's entire event
//! history — accept, taint application, reads, writes, close — is handled
//! by exactly one lane and therefore lives on exactly one shard; lanes
//! share nothing but the (mutex-guarded) byte substrate and the global
//! environment. `lanes = 1` is the paper-faithful configuration and runs
//! the identical code path the single-netd build did.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, Payload, ProcessId, SendArgs, Service, Sys,
    Value,
};

use crate::proto::NetMsg;
use crate::tcp::{ConnId, SimNet};

/// Cycle cost netd charges per protocol event (its per-message user-space
/// work: demultiplexing, buffer management). Calibrated in EXPERIMENTS.md.
pub const NETD_EVENT_CYCLES: u64 = 78_000;

/// Cycle cost netd charges per payload byte moved.
pub const NETD_BYTE_CYCLES: u64 = 40;

/// Environment key where netd publishes its control (listen) port.
///
/// On a multi-lane front end this names lane 0's control port (the lanes
/// also publish lane-qualified keys, [`netd_control_env`]); single-lane
/// deployments publish only this key, exactly as before.
pub const NETD_CONTROL_ENV: &str = "netd.control";

/// Environment key where netd's device port is published (used by the
/// external driver to inject connection events; not a process-facing port).
pub const NETD_DEVICE_ENV: &str = "netd.device";

/// Environment key for the lane count of a multi-queue netd front end.
/// Published (as a `Value::U64`) only when `lanes > 1`; absence means the
/// single-netd configuration.
pub const NETD_LANES_ENV: &str = "netd.lanes";

/// Environment key that arms netd's overload shedding (any non-zero
/// `Value::U64`). A deployment decision, not a per-process one: netd is
/// trusted and unlabeled, and whether the edge sheds under load is a
/// policy the operator opts into alongside [`Kernel::set_backpressure`].
/// Absent (the default) netd accepts unconditionally — the exact pre-shed
/// code path, which is what keeps the netd determinism golden intact.
pub const NETD_SHED_ENV: &str = "netd.shed";

/// Bound on accepts a lane will hold back while its shard is hot before
/// it starts refusing connections outright.
pub const MAX_DEFERRED_ACCEPTS: usize = 64;

/// Environment key for lane `lane`'s control (listen) port.
pub fn netd_control_env(lane: usize) -> String {
    format!("netd.control.{lane}")
}

/// Environment key for lane `lane`'s device port.
pub fn netd_device_env(lane: usize) -> String {
    format!("netd.device.{lane}")
}

/// Reads the lane count a running deployment published (1 when absent —
/// the single-netd configuration publishes no lane count).
pub fn netd_lanes(kernel: &Kernel) -> usize {
    kernel
        .global_env(NETD_LANES_ENV)
        .and_then(|v| v.as_u64())
        .map_or(1, |n| n as usize)
}

/// Registers `notify` for `tcp_port` with **every** netd lane, from
/// inside a running service: discovers the lane count from the
/// environment (absent ⇒ the single-netd configuration, which published
/// only the legacy [`NETD_CONTROL_ENV`] key) and sends one LISTEN per
/// lane. This is the one place that owns the legacy-vs-lane-qualified
/// key special case; ok-demux and the lane tests all go through it.
pub fn listen_all_lanes(sys: &mut Sys<'_>, tcp_port: u16, notify: Handle) {
    let lanes = sys
        .env(NETD_LANES_ENV)
        .and_then(|v| v.as_u64())
        .map_or(1, |n| n as usize);
    for lane in 0..lanes {
        let key = if lanes == 1 {
            NETD_CONTROL_ENV.to_string()
        } else {
            netd_control_env(lane)
        };
        let control = sys
            .env(&key)
            .and_then(|v| v.as_handle())
            .expect("every netd lane publishes its control port");
        let _ = sys.send(control, NetMsg::Listen { tcp_port, notify }.to_value());
    }
}

/// State netd keeps per live connection.
struct ConnState {
    conn: ConnId,
    /// Taint handle applied to replies, once registered.
    taint: Option<Handle>,
    /// Reply-port capabilities granted for this connection's reads; they
    /// are released on Close so netd's send label grows per *session*
    /// (taint handles), not per connection (§9.3's release discipline).
    reply_caps: Vec<Handle>,
}

/// The netd service: one network lane (the whole network when `lanes = 1`).
pub struct Netd {
    net: Arc<Mutex<SimNet>>,
    /// This instance's lane index.
    lane: usize,
    /// Total lanes in the front end (1 = the paper's single netd).
    lanes: usize,
    /// Connection port `uC` → connection state.
    conns: BTreeMap<Handle, ConnState>,
    /// TCP port → notify port of the registered listener.
    listeners: BTreeMap<u16, Handle>,
    control_port: Option<Handle>,
    device_port: Option<Handle>,
    /// Accepts held back while this lane's shard was hot (FIFO; bounded
    /// by [`MAX_DEFERRED_ACCEPTS`], overflow is shed instead).
    deferred_accepts: VecDeque<(ConnId, u16)>,
    /// Whether a self-wakeup is already queued on the device port. At
    /// most one is ever in flight: queued wakeups count toward the very
    /// mailbox depth `overloaded()` reads, so letting them accumulate
    /// would make the overload signal self-sustaining.
    wakeup_armed: bool,
    /// Accepts ever deferred by this lane.
    accepts_deferred: u64,
    /// Connections this lane refused under overload (closed unserved).
    accepts_shed: u64,
}

impl Netd {
    /// Creates the single-netd service over a shared substrate.
    pub fn new(net: Arc<Mutex<SimNet>>) -> Netd {
        Netd::lane(net, 0, 1)
    }

    /// Creates lane `lane` of a `lanes`-wide front end.
    pub fn lane(net: Arc<Mutex<SimNet>>, lane: usize, lanes: usize) -> Netd {
        assert!(lanes >= 1 && lane < lanes, "lane {lane} of {lanes} lanes");
        Netd {
            net,
            lane,
            lanes,
            conns: BTreeMap::new(),
            listeners: BTreeMap::new(),
            control_port: None,
            device_port: None,
            deferred_accepts: VecDeque::new(),
            wakeup_armed: false,
            accepts_deferred: 0,
            accepts_shed: 0,
        }
    }

    /// Accepts this lane has held back so far (cumulative).
    pub fn accepts_deferred(&self) -> u64 {
        self.accepts_deferred
    }

    /// Connections this lane refused under overload (cumulative).
    pub fn accepts_shed(&self) -> u64 {
        self.accepts_shed
    }

    /// Accepts currently held back awaiting a cooler shard (the live
    /// backlog, not the cumulative count — the load harness watches this
    /// reach zero during recovery).
    pub fn deferred_backlog(&self) -> usize {
        self.deferred_accepts.len()
    }

    /// Whether a self-wakeup is in flight for this lane.
    pub fn wakeup_armed(&self) -> bool {
        self.wakeup_armed
    }

    /// Whether the operator armed edge shedding for this deployment.
    fn shed_enabled(&self, sys: &Sys<'_>) -> bool {
        sys.env(NETD_SHED_ENV).and_then(|v| v.as_u64()).unwrap_or(0) != 0
    }

    /// Refuses `conn` outright: close it unserved and count the shed.
    /// The client observes a closed connection with an empty response —
    /// the retryable signature [`crate::driver::ClientDriver::retry_shed`]
    /// keys off.
    fn shed_conn(&mut self, conn: ConnId) {
        let mut net = self.net.lock().unwrap();
        net.close(conn);
        net.refused += 1;
        self.accepts_shed += 1;
    }

    fn handle_device_event(&mut self, sys: &mut Sys<'_>, msg: NetMsg) {
        let NetMsg::DevNewConn { conn, tcp_port } = msg else {
            return;
        };
        if self.shed_enabled(sys) && sys.overloaded() {
            // This lane's shard is hot: hold the accept back rather than
            // pile more work onto saturated mailboxes. The bounded defer
            // queue drains (FIFO) once pressure eases; past the bound the
            // edge sheds — refusing at the NIC is the graceful-degradation
            // move, since an accepted-then-starved connection costs kernel
            // state and still times out.
            if self.deferred_accepts.len() >= MAX_DEFERRED_ACCEPTS {
                self.shed_conn(conn);
            } else {
                self.deferred_accepts.push_back((conn, tcp_port));
                self.accepts_deferred += 1;
                // Arm a self-wakeup so the queue drains even if no
                // further traffic reaches this lane.
                self.arm_wakeup(sys);
            }
            return;
        }
        self.accept(sys, conn, tcp_port);
    }

    /// Sends this lane a no-op message on its own device port (at most
    /// one outstanding). The delivery forces a future activation, whose
    /// entry hook drains the deferred-accept queue once the shard has
    /// cooled.
    fn arm_wakeup(&mut self, sys: &mut Sys<'_>) {
        if self.wakeup_armed {
            return;
        }
        if let Some(device) = self.device_port {
            if sys.send(device, Value::Unit).is_ok() {
                self.wakeup_armed = true;
            }
        }
    }

    /// Admits one connection: allocate `uC`, record state, notify the
    /// listener. With backpressure armed the notify itself can hit
    /// [`asbestos_kernel::SysError::WouldBlock`] (netd exhausted its own
    /// send credit toward the listener) — that is the kernel telling the
    /// edge to slow down, so the connection is shed, not retried.
    fn accept(&mut self, sys: &mut Sys<'_>, conn: ConnId, tcp_port: u16) {
        let Some(&notify) = self.listeners.get(&tcp_port) else {
            // No listener: refuse the connection.
            self.net.lock().unwrap().close(conn);
            return;
        };
        // §7.2 step 1: allocate uC with port label {uC 0, 2} — the kernel's
        // new_port already applies `p_R(uC) ← 0` to our {2}.
        let uc = sys.new_port(Label::default_recv());
        self.conns.insert(
            uc,
            ConnState {
                conn,
                taint: None,
                reply_caps: Vec::new(),
            },
        );
        // Step 2: notify the listener, granting uC at ⋆.
        let grant = Label::from_pairs(Level::L3, &[(uc, Level::Star)]);
        match sys.send_args(
            notify,
            NetMsg::NewConn { port: uc }.to_value(),
            &SendArgs::new().grant(grant),
        ) {
            Ok(_) => {}
            Err(asbestos_kernel::SysError::WouldBlock) => {
                // Out of send credit toward the listener: unwind the
                // accept and shed the connection at the edge.
                self.conns.remove(&uc);
                let _ = sys.dissociate_port(uc);
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(uc, Level::L1)]));
                self.shed_conn(conn);
            }
            Err(e) => panic!("netd owns uC and may grant it: {e}"),
        }
    }

    /// Re-admits held-back accepts once the shard has cooled, preserving
    /// arrival order. Runs at every activation so deferral is bounded by
    /// the lane's own event cadence, not a timer.
    fn drain_deferred(&mut self, sys: &mut Sys<'_>) {
        while !self.deferred_accepts.is_empty() && !sys.overloaded() {
            let (conn, tcp_port) = self
                .deferred_accepts
                .pop_front()
                .expect("checked non-empty");
            sys.charge(NETD_EVENT_CYCLES); // same TCP setup work as a fresh accept
            self.accept(sys, conn, tcp_port);
        }
        if !self.deferred_accepts.is_empty() {
            // Still hot: re-arm exactly one wakeup so progress resumes
            // once the backlog (which the wakeup rides behind) drains.
            self.arm_wakeup(sys);
        }
    }

    fn handle_conn_message(&mut self, sys: &mut Sys<'_>, uc: Handle, msg: NetMsg) {
        let Some(state) = self.conns.get(&uc) else {
            return;
        };
        let conn = state.conn;
        let taint = state.taint;
        // Replies for tainted connections carry `uT 3` (§7.2 step 5: "netd
        // will respond to all messages on uC with replies contaminated with
        // uT 3"). netd itself holds uT ⋆, so its own label is unaffected.
        let reply_args = || match taint {
            Some(t) => {
                SendArgs::new().contaminate(Label::from_pairs(Level::Star, &[(t, Level::L3)]))
            }
            None => SendArgs::new(),
        };
        match msg {
            NetMsg::Read { max, reply, peek } => {
                if let Some(s) = self.conns.get_mut(&uc) {
                    if !s.reply_caps.contains(&reply) {
                        s.reply_caps.push(reply);
                    }
                }
                let limit = usize::try_from(max).unwrap_or(usize::MAX);
                // Zero-copy ingest: the substrate freezes the read bytes
                // once, and the frozen buffer rides into the kernel as a
                // refcounted payload — the single write-at-the-edge the
                // whole message path preserves.
                let frozen = if peek {
                    self.net.lock().unwrap().server_peek(conn, limit)
                } else {
                    self.net.lock().unwrap().server_read(conn, limit)
                };
                let bytes = Payload::from_arc(frozen.into_arc());
                sys.charge(NETD_EVENT_CYCLES + bytes.len() as u64 * NETD_BYTE_CYCLES);
                let body = NetMsg::ReadR { bytes }.to_value();
                let _ = sys.send_args(reply, body, &reply_args());
            }
            NetMsg::Write { bytes } => {
                sys.charge(NETD_EVENT_CYCLES + bytes.len() as u64 * NETD_BYTE_CYCLES);
                self.net.lock().unwrap().server_write(conn, &bytes);
            }
            NetMsg::AddTaint { taint } => {
                sys.charge(NETD_EVENT_CYCLES);
                // The sender granted us taint ⋆ alongside this message
                // (§7.2 step 5). Raise our receive label so uT-tainted
                // processes can keep talking to us, and raise uC's port
                // label to {uC 0, uT 3, 2}.
                sys.raise_recv(taint, Level::L3)
                    .expect("AddTaint must arrive with a ⋆ grant for the taint handle");
                let port_label =
                    Label::from_pairs(Level::L2, &[(uc, Level::L0), (taint, Level::L3)]);
                sys.set_port_label(uc, port_label)
                    .expect("netd owns every connection port");
                if let Some(s) = self.conns.get_mut(&uc) {
                    s.taint = Some(taint);
                }
            }
            NetMsg::Select { reply } => {
                sys.charge(NETD_EVENT_CYCLES);
                let available = self.net.lock().unwrap().server_pending(conn) as u64;
                let _ = sys.send_args(
                    reply,
                    NetMsg::SelectR { available }.to_value(),
                    &reply_args(),
                );
            }
            NetMsg::Close => {
                sys.charge(NETD_EVENT_CYCLES);
                // Mark closed; buffered response bytes stay readable by the
                // client side (FIN after flush). The driver reaps the
                // substrate record once it has drained the response.
                self.net.lock().unwrap().close(conn);
                let state = self.conns.remove(&uc);
                let _ = sys.dissociate_port(uc);
                // Release this connection's capabilities (§9.3): uC itself
                // plus every reply port granted for its reads. Taint ⋆
                // entries stay — those are the per-user growth Figure 9
                // measures.
                let mut drops = vec![(uc, Level::L1)];
                if let Some(state) = state {
                    drops.extend(state.reply_caps.iter().map(|&p| (p, Level::L1)));
                }
                sys.self_contaminate(&Label::from_pairs(Level::Star, &drops));
            }
            _ => {}
        }
    }
}

impl Service for Netd {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        // Control port: open to any untainted process (LISTEN requests).
        let control = sys.new_port(Label::top());
        sys.set_port_label(control, Label::top())
            .expect("creator owns the control port");
        if self.lanes == 1 {
            // Single-netd configuration: exactly the pre-lane publication
            // sequence (pinned bit-for-bit by netd_determinism.rs).
            sys.publish_env(NETD_CONTROL_ENV, Value::Handle(control));
        } else {
            sys.publish_env(&netd_control_env(self.lane), Value::Handle(control));
        }
        self.control_port = Some(control);

        // Device port: where the external world injects connection events.
        // Its label stays fresh-closed — injected messages bypass labels
        // (they are hardware), and no simulated process can forge one.
        let device = sys.new_port(Label::default_recv());
        if self.lanes == 1 {
            sys.publish_env(NETD_DEVICE_ENV, Value::Handle(device));
        } else {
            sys.publish_env(&netd_device_env(self.lane), Value::Handle(device));
            if self.lane == 0 {
                // Lane 0 doubles as the legacy single-netd namespace so
                // lane-unaware code still finds *a* netd, and announces
                // the front end's width for lane-aware clients.
                sys.publish_env(NETD_CONTROL_ENV, Value::Handle(control));
                sys.publish_env(NETD_DEVICE_ENV, Value::Handle(device));
                sys.publish_env(NETD_LANES_ENV, Value::U64(self.lanes as u64));
            }
        }
        self.device_port = Some(device);
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        let net_msg = NetMsg::from_value(&msg.body);
        if Some(msg.port) == self.device_port && net_msg.is_none() {
            // Our own wakeup came back around: the one outstanding slot
            // is free again.
            self.wakeup_armed = false;
        }
        if !self.deferred_accepts.is_empty() {
            self.drain_deferred(sys);
        }
        let Some(net_msg) = net_msg else {
            return;
        };
        sys.charge(NETD_EVENT_CYCLES / 8); // demux overhead per event
        if Some(msg.port) == self.device_port {
            sys.charge(NETD_EVENT_CYCLES); // interrupt + TCP setup work
            self.handle_device_event(sys, net_msg);
        } else if Some(msg.port) == self.control_port {
            if let NetMsg::Listen { tcp_port, notify } = net_msg {
                self.listeners.insert(tcp_port, notify);
            }
        } else {
            let uc = msg.port;
            self.handle_conn_message(sys, uc, net_msg);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// One spawned lane of the front end.
#[derive(Clone, Copy, Debug)]
pub struct NetdLane {
    /// The lane's process id (its shard is `pid.shard()`).
    pub pid: ProcessId,
    /// The lane's control port (LISTEN requests).
    pub control_port: Handle,
    /// The lane's device port (external injections).
    pub device_port: Handle,
}

/// Spawn info for a running netd front end.
pub struct NetdHandle {
    /// Lane 0's process id.
    pub pid: ProcessId,
    /// Lane 0's control port (LISTEN requests).
    pub control_port: Handle,
    /// Lane 0's device port (external injections).
    pub device_port: Handle,
    /// Every lane, in lane order (length 1 for the single-netd build).
    pub lanes: Vec<NetdLane>,
    /// The shared TCP substrate.
    pub net: Arc<Mutex<SimNet>>,
}

/// Spawns the single-process netd into a kernel (the paper-faithful
/// configuration; identical to `spawn_netd_lanes(kernel, 1)`).
pub fn spawn_netd(kernel: &mut Kernel) -> NetdHandle {
    spawn_netd_lanes(kernel, 1)
}

/// Spawns a `lanes`-wide multi-queue netd front end.
///
/// Lane 0 is placed by the kernel's ordinary round-robin spawn (so a
/// single-lane front end is placed exactly where the old single netd
/// was); lane `i` is pinned to shard `(shard_of(lane 0) + i) mod shards`,
/// one lane per shard until lanes wrap. Each lane publishes its
/// lane-qualified control/device ports in the global environment; lane 0
/// additionally publishes the legacy unqualified keys and
/// [`NETD_LANES_ENV`].
pub fn spawn_netd_lanes(kernel: &mut Kernel, lanes: usize) -> NetdHandle {
    assert!(lanes >= 1, "a netd front end needs at least one lane");
    let net = Arc::new(Mutex::new(SimNet::new()));
    let mut lane_handles = Vec::with_capacity(lanes);
    let mut first_shard = 0;
    for lane in 0..lanes {
        let name = if lane == 0 {
            "netd".to_string()
        } else {
            format!("netd.{lane}")
        };
        let service = Box::new(Netd::lane(net.clone(), lane, lanes));
        let pid = if lane == 0 {
            let pid = kernel.spawn(&name, Category::Network, service);
            first_shard = pid.shard();
            pid
        } else {
            let shard = (first_shard + lane) % kernel.num_shards();
            kernel.spawn_on(shard, &name, Category::Network, service)
        };
        let (control_key, device_key) = if lanes == 1 {
            (NETD_CONTROL_ENV.to_string(), NETD_DEVICE_ENV.to_string())
        } else {
            (netd_control_env(lane), netd_device_env(lane))
        };
        let control_port = kernel
            .global_env_handle(&control_key)
            .expect("every netd lane publishes its control port on start");
        let device_port = kernel
            .global_env_handle(&device_key)
            .expect("every netd lane publishes its device port on start");
        lane_handles.push(NetdLane {
            pid,
            control_port,
            device_port,
        });
    }
    NetdHandle {
        pid: lane_handles[0].pid,
        control_port: lane_handles[0].control_port,
        device_port: lane_handles[0].device_port,
        lanes: lane_handles,
        net,
    }
}
