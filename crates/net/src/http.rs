//! A minimal HTTP/1.0 parser and response builder.
//!
//! OKWS's ok-demux parses request lines and headers to route connections to
//! workers (§7); this module provides exactly that much HTTP. The §9.2
//! benchmark responses are 144 bytes with 133 bytes of headers, which the
//! response builder reproduces.

use std::collections::BTreeMap;
use std::fmt;

use asbestos_kernel::Payload;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, lower-cased keys.
    pub headers: BTreeMap<String, String>,
    /// Request body (bytes after the blank line).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First query parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first path segment, used by ok-demux as the service name:
    /// `/login?u=alice` → `login`.
    pub fn service(&self) -> &str {
        self.path
            .trim_start_matches('/')
            .split('/')
            .next()
            .unwrap_or("")
    }
}

/// Why a request failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The byte buffer does not yet contain a full head (`\r\n\r\n`).
    Incomplete,
    /// The request line is malformed.
    BadRequestLine,
    /// A header line is malformed.
    BadHeader,
    /// The request is not valid UTF-8 where text is required.
    BadEncoding,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HttpError::Incomplete => "incomplete request head",
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header",
            HttpError::BadEncoding => "request head is not UTF-8",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HttpError {}

/// Parses one HTTP request from `buf`.
///
/// Returns [`HttpError::Incomplete`] until the head terminator arrives, so
/// callers can accumulate bytes across READ replies.
pub fn parse_request(buf: &[u8]) -> Result<HttpRequest, HttpError> {
    let head_end = find_head_end(buf).ok_or(HttpError::Incomplete)?;
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpError::BadEncoding)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let _version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = parse_query(query_str);

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }

    let body = buf[head_end + 4..].to_vec();
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// Splits `a=1&b=2` into pairs; `%`-decoding is limited to `%20` and `+`
/// (all the benchmark workloads need).
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (decode(k), decode(v)),
            None => (decode(kv), String::new()),
        })
        .collect()
}

fn decode(s: &str) -> String {
    s.replace('+', " ").replace("%20", " ")
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decimal digit count (for exact response-head sizing).
fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Exact byte length of the response head `build_response` emits for
/// this status line and body length.
fn head_len(status: u16, reason: &str, body_len: usize) -> usize {
    // "HTTP/1.0 {status} {reason}\r\n"
    let status_line = 9 + digits(status as usize) + 1 + reason.len() + 2;
    // Fixed headers, the width-padded Content-Length, and the blank line.
    let content_length = 16 + digits(body_len).max(5) + 2;
    status_line + 31 + 41 + content_length + 19 + 2
}

/// Builds an HTTP/1.0 response as a shared [`Payload`].
///
/// The buffer is preallocated at its exact final size and written once —
/// the single payload materialization on a worker's response path; every
/// later hop (OKWS → netd → substrate) moves the refcount. The body can
/// be re-extracted as a shared slice with [`response_body`].
///
/// With the default server headers and a 11-byte body this produces exactly
/// the paper's 144-byte benchmark response (133 bytes of headers).
pub fn build_response(status: u16, reason: &str, body: &[u8]) -> Payload {
    use std::io::Write as _;
    let exact = head_len(status, reason, body.len()) + body.len();
    let mut out = Vec::with_capacity(exact);
    // `write!` into the Vec: no intermediate format! allocations.
    let _ = write!(out, "HTTP/1.0 {status} {reason}\r\n");
    out.extend_from_slice(b"Server: OKWS/Asbestos SOSP-05\r\n");
    out.extend_from_slice(b"Content-Type: text/plain; charset=utf-8\r\n");
    let _ = write!(out, "Content-Length: {:>5}\r\n", body.len());
    out.extend_from_slice(b"Connection: close\r\n");
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    debug_assert_eq!(out.len(), exact, "head_len must size the head exactly");
    debug_assert_eq!(out.capacity(), exact, "response build must not realloc");
    out.into()
}

/// Convenience: `200 OK` with the given body.
pub fn ok_response(body: &[u8]) -> Payload {
    build_response(200, "OK", body)
}

/// Convenience: an error response.
pub fn error_response(status: u16, reason: &str) -> Payload {
    build_response(status, reason, reason.as_bytes())
}

/// The body of a built response, as a zero-copy slice sharing the
/// response's buffer (e.g. for caching a served body without rebuilding
/// or copying it).
pub fn response_body(response: &Payload) -> Payload {
    match response.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(head) => response.slice(head + 4..response.len()),
        None => response.slice(0..0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_query_and_headers() {
        let raw =
            b"GET /login?user=alice&pw=secret HTTP/1.0\r\nHost: example.test\r\nX-Tag: 7\r\n\r\n";
        let req = parse_request(raw).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/login");
        assert_eq!(req.service(), "login");
        assert_eq!(req.param("user"), Some("alice"));
        assert_eq!(req.param("pw"), Some("secret"));
        assert_eq!(
            req.headers.get("host").map(String::as_str),
            Some("example.test")
        );
        assert_eq!(req.headers.get("x-tag").map(String::as_str), Some("7"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn incomplete_until_blank_line() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\nHost: x\r\n"),
            Err(HttpError::Incomplete)
        );
        assert!(parse_request(b"GET / HTTP/1.0\r\n\r\n").is_ok());
    }

    #[test]
    fn body_is_preserved() {
        let raw = b"POST /store HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_request(raw).unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(parse_request(b"\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse_request(b"GET /\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\nbad-header-line\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
    }

    #[test]
    fn query_decoding() {
        let q = parse_query("a=1+2&b=x%20y&flag");
        assert_eq!(
            q,
            vec![
                ("a".into(), "1 2".into()),
                ("b".into(), "x y".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn benchmark_response_is_144_bytes() {
        // §9.2.1: "the server responded with 144 bytes of HTTP data, 133
        // bytes of which were in headers."
        let resp = ok_response(b"hello world");
        assert_eq!(resp.len(), 144, "total response bytes");
        let head_len = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(head_len, 133, "header bytes");
    }

    #[test]
    fn build_is_one_materialization_and_body_slice_is_shared() {
        let before = Payload::deep_copies();
        let resp = build_response(200, "OK", b"hello world");
        assert_eq!(
            Payload::deep_copies(),
            before + 1,
            "one exact-capacity buffer, written once"
        );
        let body = response_body(&resp);
        assert_eq!(&body[..], b"hello world");
        assert_eq!(body.backing_id(), resp.backing_id(), "zero-copy slice");
        assert_eq!(Payload::deep_copies(), before + 1);
    }

    #[test]
    fn head_len_matches_for_varied_statuses_and_bodies() {
        for (status, reason, body) in [
            (200u16, "OK", &b"hello world"[..]),
            (404, "Not Found", b""),
            (503, "Service Unavailable", b"idd unavailable"),
            (200, "OK", &[0u8; 123_456][..]),
        ] {
            let resp = build_response(status, reason, body);
            assert_eq!(
                resp.len(),
                head_len(status, reason, body.len()) + body.len()
            );
        }
    }

    #[test]
    fn path_without_query() {
        let req = parse_request(b"GET /plain HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.path, "/plain");
        assert!(req.query.is_empty());
        assert_eq!(req.param("missing"), None);
    }
}
