//! The external HTTP client driver.
//!
//! Plays the role of the paper's Linux load-generator box (§9): it opens
//! simulated TCP connections carrying HTTP requests, injects the connection
//! events into netd, and collects responses and latency samples. The driver
//! is outside the label system — it is the network, not a process.
//!
//! With a multi-lane netd front end the driver is also the multi-queue NIC:
//! each connection is hashed by the RSS demultiplexer to one lane, and the
//! driver keeps a per-lane index of outstanding requests so completion
//! polling is per lane and O(outstanding-in-lane) — the structure the
//! load/latency harness (`crates/loadgen`) and the sharded Figure 8 port
//! depend on at large request counts.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::{Handle, Kernel, CYCLES_PER_SEC};

use crate::netd::NetdHandle;
use crate::proto::NetMsg;
use crate::tcp::{ConnId, MultiQueue, SimNet};

/// An in-flight or completed client request.
#[derive(Clone, Debug)]
pub struct ClientRequest {
    /// Substrate connection id.
    pub conn: ConnId,
    /// The server TCP port the request targets (kept for shed retries).
    pub tcp_port: u16,
    /// The netd lane the RSS demux hashed the current connection to.
    pub lane: usize,
    /// Virtual time when the connection event was injected.
    pub started_at: u64,
    /// Virtual time when the full response was observed, if finished.
    pub finished_at: Option<u64>,
    /// Response bytes collected so far.
    pub response: Vec<u8>,
    /// The request bytes, kept so a shed connection can be re-issued.
    pub request_bytes: Vec<u8>,
    /// Times this request was refused at the edge and re-opened.
    pub retries: u32,
    /// The client killed this connection mid-stream: it will never
    /// complete and must not be mistaken for an edge shed and retried.
    pub aborted: bool,
}

impl ClientRequest {
    /// Request latency in cycles, if the response completed.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.finished_at.map(|f| f - self.started_at)
    }

    /// Request latency in microseconds of simulated 2.8 GHz time.
    pub fn latency_us(&self) -> Option<f64> {
        self.latency_cycles()
            .map(|c| c as f64 * 1e6 / CYCLES_PER_SEC as f64)
    }
}

/// Drives HTTP requests through the simulated network.
///
/// With a multi-lane netd front end the driver plays the multi-queue NIC:
/// each new connection is hashed by the RSS demultiplexer to one lane's
/// device port, and every later event for that connection stays on that
/// lane.
pub struct ClientDriver {
    net: Arc<Mutex<SimNet>>,
    device_ports: Vec<Handle>,
    demux: MultiQueue,
    requests: Vec<ClientRequest>,
    /// Open request indices, per lane — the poll working set. A request
    /// leaves its lane's list when it completes, aborts, or (on a shed
    /// retry) re-hashes to another lane.
    outstanding: Vec<Vec<usize>>,
}

impl ClientDriver {
    /// Creates a driver bound to a spawned netd front end.
    pub fn new(netd: &NetdHandle) -> ClientDriver {
        let device_ports: Vec<Handle> = netd.lanes.iter().map(|l| l.device_port).collect();
        let demux = MultiQueue::new(device_ports.len());
        let outstanding = vec![Vec::new(); device_ports.len()];
        ClientDriver {
            net: netd.net.clone(),
            device_ports,
            demux,
            requests: Vec::new(),
            outstanding,
        }
    }

    /// Number of netd lanes the driver feeds.
    pub fn lanes(&self) -> usize {
        self.device_ports.len()
    }

    /// Opens a connection carrying `request_bytes` to `tcp_port` and tells
    /// its lane's netd about it. Returns an index into
    /// [`ClientDriver::requests`].
    pub fn open(&mut self, kernel: &mut Kernel, tcp_port: u16, request_bytes: &[u8]) -> usize {
        let conn = self
            .net
            .lock()
            .unwrap()
            .client_open(tcp_port, request_bytes);
        let lane = self.demux.accept(conn, tcp_port);
        kernel.inject(
            self.device_ports[lane],
            NetMsg::DevNewConn { conn, tcp_port }.to_value(),
        );
        self.requests.push(ClientRequest {
            conn,
            tcp_port,
            lane,
            started_at: kernel.elapsed_cycles(),
            finished_at: None,
            response: Vec::new(),
            request_bytes: request_bytes.to_vec(),
            retries: 0,
            aborted: false,
        });
        let idx = self.requests.len() - 1;
        self.outstanding[lane].push(idx);
        idx
    }

    /// Connections accepted per lane so far (the RSS spread observable).
    pub fn lane_accepts(&self) -> &[u64] {
        self.demux.accepts()
    }

    /// Convenience: issues a GET for `path` (HTTP/1.0, benchmark headers).
    pub fn get(&mut self, kernel: &mut Kernel, tcp_port: u16, path: &str) -> usize {
        let req =
            format!("GET {path} HTTP/1.0\r\nHost: asbestos.test\r\nUser-Agent: bench/0.1\r\n\r\n");
        self.open(kernel, tcp_port, req.as_bytes())
    }

    /// Kills a request's connection from the client side mid-stream (the
    /// disconnect scenarios: a user closing the tab). The request is
    /// marked aborted — it will never complete, and neither polling nor
    /// shed-retry will touch it again; the substrate connection is reaped
    /// once the server side is done with it.
    pub fn abort(&mut self, idx: usize) {
        let req = &mut self.requests[idx];
        if req.finished_at.is_some() || req.aborted {
            return;
        }
        req.aborted = true;
        self.net.lock().unwrap().close(req.conn);
        self.outstanding[req.lane].retain(|&i| i != idx);
    }

    /// Reaps the substrate connection of an aborted request (call after
    /// the kernel has drained, so the server side has observed the close).
    pub fn reap_aborted(&mut self) {
        let mut net = self.net.lock().unwrap();
        for req in &self.requests {
            if req.aborted {
                net.reap(req.conn);
            }
        }
    }

    /// Collects newly arrived response bytes for every lane. A request
    /// completes when the server has closed the connection with a
    /// non-empty response (HTTP/1.0 close-delimited framing, which is what
    /// OKWS and the baselines use). Completed connections are reaped from
    /// the substrate.
    pub fn poll(&mut self, kernel: &Kernel) {
        for lane in 0..self.device_ports.len() {
            self.poll_lane(kernel, lane);
        }
    }

    /// Per-lane completion polling: collects response bytes for the
    /// outstanding requests of `lane` only. This is the multi-queue
    /// analogue of a NIC completion ring — the latency harness polls each
    /// lane as its shard drains instead of scanning every request ever
    /// issued, which is what keeps polling O(outstanding) under
    /// million-session logs.
    pub fn poll_lane(&mut self, kernel: &Kernel, lane: usize) {
        let now = kernel.elapsed_cycles();
        let mut net = self.net.lock().unwrap();
        let requests = &mut self.requests;
        self.outstanding[lane].retain(|&idx| {
            let req = &mut requests[idx];
            if req.finished_at.is_some() || req.aborted {
                return false;
            }
            let bytes = net.client_take_response(req.conn);
            req.response.extend_from_slice(&bytes);
            if !net.is_open(req.conn) && !req.response.is_empty() {
                req.finished_at = Some(now);
                net.reap(req.conn);
                return false;
            }
            true
        });
    }

    /// Re-issues requests whose connection the server closed without a
    /// single response byte — the overload-shed signature (netd refuses
    /// accepts at the edge when its shard runs hot). A well-behaved client
    /// backs off and retries; this models the retry. The original
    /// `started_at` is kept, so the measured latency of a shed-then-served
    /// request includes the refusal round-trip — that *is* the price of
    /// graceful degradation. Shed-then-retried requests are reported as
    /// the *retried* latency series ([`ClientDriver::retried_latencies_us`]),
    /// distinct from the fresh series, so the refusal round-trips never
    /// silently inflate a scenario's p999. Client-aborted requests are
    /// never retried. Returns how many requests were re-opened.
    pub fn retry_shed(&mut self, kernel: &mut Kernel) -> usize {
        let mut retried = 0;
        // Only outstanding requests can have been shed; collect the
        // candidates per lane first (a retry re-hashes to a new lane, so
        // the lists are edited after the scan).
        let mut shed_idxs = Vec::new();
        {
            let net = self.net.lock().unwrap();
            for lane in &self.outstanding {
                for &idx in lane {
                    let req = &self.requests[idx];
                    if req.finished_at.is_none()
                        && !req.aborted
                        && req.response.is_empty()
                        && !net.is_open(req.conn)
                    {
                        shed_idxs.push(idx);
                    }
                }
            }
        }
        for idx in shed_idxs {
            let (old_conn, old_lane, tcp_port, bytes) = {
                let req = &self.requests[idx];
                (req.conn, req.lane, req.tcp_port, req.request_bytes.clone())
            };
            let new_conn = {
                let mut net = self.net.lock().unwrap();
                net.reap(old_conn);
                net.client_open(tcp_port, &bytes)
            };
            let lane = self.demux.accept(new_conn, tcp_port);
            kernel.inject(
                self.device_ports[lane],
                NetMsg::DevNewConn {
                    conn: new_conn,
                    tcp_port,
                }
                .to_value(),
            );
            let req = &mut self.requests[idx];
            req.conn = new_conn;
            req.retries += 1;
            if lane != old_lane {
                req.lane = lane;
                self.outstanding[old_lane].retain(|&i| i != idx);
                self.outstanding[lane].push(idx);
            }
            retried += 1;
        }
        retried
    }

    /// Total edge refusals the driver has retried so far.
    pub fn total_retries(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// All requests issued so far.
    pub fn requests(&self) -> &[ClientRequest] {
        &self.requests
    }

    /// One request, by the index returned from [`ClientDriver::open`].
    pub fn request(&self, idx: usize) -> &ClientRequest {
        &self.requests[idx]
    }

    fn collect_latencies(&self, retried: bool) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .requests
            .iter()
            .filter(|r| (r.retries > 0) == retried)
            .filter_map(ClientRequest::latency_us)
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        out
    }

    /// Completed *fresh* request latencies in microseconds, sorted
    /// ascending: requests that were served on their first connection.
    /// Shed-then-retried requests are deliberately excluded — their
    /// latency includes edge-refusal round-trips and belongs to the
    /// distinct [`ClientDriver::retried_latencies_us`] series, not in the
    /// tail of this one.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.collect_latencies(false)
    }

    /// Completed latencies of shed-then-retried requests, sorted
    /// ascending (includes the refusal round-trips — the price of
    /// graceful degradation, reported as its own series).
    pub fn retried_latencies_us(&self) -> Vec<f64> {
        self.collect_latencies(true)
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.finished_at.is_some())
            .count()
    }

    /// Number of requests aborted from the client side.
    pub fn aborted(&self) -> usize {
        self.requests.iter().filter(|r| r.aborted).count()
    }

    /// Requests still awaiting a response (not completed, not aborted).
    pub fn outstanding(&self) -> usize {
        self.outstanding.iter().map(Vec::len).sum()
    }

    /// Clears the request log (keeps connections).
    pub fn reset_log(&mut self) {
        self.requests.clear();
        for lane in &mut self.outstanding {
            lane.clear();
        }
    }
}

/// Percentile over a sorted slice (nearest-rank); `p` in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    // The epsilon keeps exact ranks exact: 99.9% of 1000 must be rank
    // 999, but (99.9 / 100) * 1000 lands a few ulps above 999.0 and a
    // bare ceil would skip to the max sample.
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 90.0), Some(4.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
