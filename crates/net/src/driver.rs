//! The external HTTP client driver.
//!
//! Plays the role of the paper's Linux load-generator box (§9): it opens
//! simulated TCP connections carrying HTTP requests, injects the connection
//! events into netd, and collects responses and latency samples. The driver
//! is outside the label system — it is the network, not a process.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::{Handle, Kernel, CYCLES_PER_SEC};

use crate::netd::NetdHandle;
use crate::proto::NetMsg;
use crate::tcp::{ConnId, MultiQueue, SimNet};

/// An in-flight or completed client request.
#[derive(Clone, Debug)]
pub struct ClientRequest {
    /// Substrate connection id.
    pub conn: ConnId,
    /// The server TCP port the request targets (kept for shed retries).
    pub tcp_port: u16,
    /// Virtual time when the connection event was injected.
    pub started_at: u64,
    /// Virtual time when the full response was observed, if finished.
    pub finished_at: Option<u64>,
    /// Response bytes collected so far.
    pub response: Vec<u8>,
    /// The request bytes, kept so a shed connection can be re-issued.
    pub request_bytes: Vec<u8>,
    /// Times this request was refused at the edge and re-opened.
    pub retries: u32,
}

impl ClientRequest {
    /// Request latency in cycles, if the response completed.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.finished_at.map(|f| f - self.started_at)
    }

    /// Request latency in microseconds of simulated 2.8 GHz time.
    pub fn latency_us(&self) -> Option<f64> {
        self.latency_cycles()
            .map(|c| c as f64 * 1e6 / CYCLES_PER_SEC as f64)
    }
}

/// Drives HTTP requests through the simulated network.
///
/// With a multi-lane netd front end the driver plays the multi-queue NIC:
/// each new connection is hashed by the RSS demultiplexer to one lane's
/// device port, and every later event for that connection stays on that
/// lane.
pub struct ClientDriver {
    net: Arc<Mutex<SimNet>>,
    device_ports: Vec<Handle>,
    demux: MultiQueue,
    requests: Vec<ClientRequest>,
}

impl ClientDriver {
    /// Creates a driver bound to a spawned netd front end.
    pub fn new(netd: &NetdHandle) -> ClientDriver {
        let device_ports: Vec<Handle> = netd.lanes.iter().map(|l| l.device_port).collect();
        let demux = MultiQueue::new(device_ports.len());
        ClientDriver {
            net: netd.net.clone(),
            device_ports,
            demux,
            requests: Vec::new(),
        }
    }

    /// Opens a connection carrying `request_bytes` to `tcp_port` and tells
    /// its lane's netd about it. Returns an index into
    /// [`ClientDriver::requests`].
    pub fn open(&mut self, kernel: &mut Kernel, tcp_port: u16, request_bytes: &[u8]) -> usize {
        let conn = self
            .net
            .lock()
            .unwrap()
            .client_open(tcp_port, request_bytes);
        let lane = self.demux.accept(conn, tcp_port);
        kernel.inject(
            self.device_ports[lane],
            NetMsg::DevNewConn { conn, tcp_port }.to_value(),
        );
        self.requests.push(ClientRequest {
            conn,
            tcp_port,
            started_at: kernel.elapsed_cycles(),
            finished_at: None,
            response: Vec::new(),
            request_bytes: request_bytes.to_vec(),
            retries: 0,
        });
        self.requests.len() - 1
    }

    /// Connections accepted per lane so far (the RSS spread observable).
    pub fn lane_accepts(&self) -> &[u64] {
        self.demux.accepts()
    }

    /// Convenience: issues a GET for `path` (HTTP/1.0, benchmark headers).
    pub fn get(&mut self, kernel: &mut Kernel, tcp_port: u16, path: &str) -> usize {
        let req =
            format!("GET {path} HTTP/1.0\r\nHost: asbestos.test\r\nUser-Agent: bench/0.1\r\n\r\n");
        self.open(kernel, tcp_port, req.as_bytes())
    }

    /// Collects newly arrived response bytes; a request completes when the
    /// server has closed the connection with a non-empty response (HTTP/1.0
    /// close-delimited framing, which is what OKWS and the baselines use).
    /// Completed connections are reaped from the substrate.
    pub fn poll(&mut self, kernel: &Kernel) {
        let mut net = self.net.lock().unwrap();
        for req in &mut self.requests {
            if req.finished_at.is_some() {
                continue;
            }
            let bytes = net.client_take_response(req.conn);
            req.response.extend_from_slice(&bytes);
            if !net.is_open(req.conn) && !req.response.is_empty() {
                req.finished_at = Some(kernel.elapsed_cycles());
                net.reap(req.conn);
            }
        }
    }

    /// Re-issues requests whose connection the server closed without a
    /// single response byte — the overload-shed signature (netd refuses
    /// accepts at the edge when its shard runs hot). A well-behaved client
    /// backs off and retries; this models the retry. The original
    /// `started_at` is kept, so the measured latency of a shed-then-served
    /// request includes the refusal round-trip — that *is* the price of
    /// graceful degradation, and the stress suite asserts it stays bounded.
    /// Returns how many requests were re-opened.
    pub fn retry_shed(&mut self, kernel: &mut Kernel) -> usize {
        let mut retried = 0;
        for i in 0..self.requests.len() {
            let (conn, shed) = {
                let req = &self.requests[i];
                if req.finished_at.is_some() || !req.response.is_empty() {
                    continue;
                }
                let net = self.net.lock().unwrap();
                (req.conn, !net.is_open(req.conn))
            };
            if !shed {
                continue;
            }
            let (tcp_port, bytes) = {
                let req = &self.requests[i];
                (req.tcp_port, req.request_bytes.clone())
            };
            let new_conn = {
                let mut net = self.net.lock().unwrap();
                net.reap(conn);
                net.client_open(tcp_port, &bytes)
            };
            let lane = self.demux.accept(new_conn, tcp_port);
            kernel.inject(
                self.device_ports[lane],
                NetMsg::DevNewConn {
                    conn: new_conn,
                    tcp_port,
                }
                .to_value(),
            );
            let req = &mut self.requests[i];
            req.conn = new_conn;
            req.retries += 1;
            retried += 1;
        }
        retried
    }

    /// Total edge refusals the driver has retried so far.
    pub fn total_retries(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// All requests issued so far.
    pub fn requests(&self) -> &[ClientRequest] {
        &self.requests
    }

    /// One request, by the index returned from [`ClientDriver::open`].
    pub fn request(&self, idx: usize) -> &ClientRequest {
        &self.requests[idx]
    }

    /// Completed-request latencies in microseconds, sorted ascending.
    pub fn latencies_us(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .requests
            .iter()
            .filter_map(ClientRequest::latency_us)
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        out
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.finished_at.is_some())
            .count()
    }

    /// Clears the request log (keeps connections).
    pub fn reset_log(&mut self) {
        self.requests.clear();
    }
}

/// Percentile over a sorted slice (nearest-rank); `p` in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 90.0), Some(4.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
