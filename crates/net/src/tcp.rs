//! The simulated TCP substrate.
//!
//! Substitutes for the paper's LWIP port and E1000 driver (§7.7). The model
//! is byte-stream connections with two buffers each; connection setup,
//! teardown, and data movement are what netd's cost accounting measures, so
//! wire-level details (segments, retransmission, congestion control) are
//! deliberately absent — no figure in the paper depends on them.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

/// Identifies a simulated TCP connection.
pub type ConnId = u64;

/// RSS-style receive-side demultiplexer: maps a connection to one of
/// `lanes` netd queues, the way a multi-queue NIC hashes a flow's 4-tuple
/// to a receive queue. The simulated flow identity is `(conn, tcp_port)`;
/// the mix is SplitMix64's finalizer, so consecutive connection ids spread
/// evenly across lanes instead of striding. The hash is a pure function of
/// the flow — every packet of a connection lands on the same lane, which
/// is the invariant that keeps a connection's whole event history on one
/// shard.
pub fn rss_lane(conn: ConnId, tcp_port: u16, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let mut z = conn ^ (u64::from(tcp_port) << 48) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % lanes as u64) as usize
}

/// Per-lane accept bookkeeping for a multi-queue front end: which lane
/// each live connection hashed to, and how many connections each lane has
/// accepted in total (the load-spread observable tests assert on).
/// Construct with [`MultiQueue::new`] — there is deliberately no
/// `Default`, since a zero-lane demux is invalid.
#[derive(Debug)]
pub struct MultiQueue {
    lanes: usize,
    accepts: Vec<u64>,
}

impl MultiQueue {
    /// A demultiplexer over `lanes` queues.
    pub fn new(lanes: usize) -> MultiQueue {
        assert!(lanes >= 1, "a multi-queue front end needs at least 1 lane");
        MultiQueue {
            lanes,
            accepts: vec![0; lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Hashes a new connection to its lane and records the accept.
    pub fn accept(&mut self, conn: ConnId, tcp_port: u16) -> usize {
        let lane = rss_lane(conn, tcp_port, self.lanes);
        self.accepts[lane] += 1;
        lane
    }

    /// Total connections ever accepted on each lane.
    pub fn accepts(&self) -> &[u64] {
        &self.accepts
    }
}

/// One byte-stream connection between the external client and netd.
#[derive(Debug, Default)]
pub struct SimConn {
    /// Bytes the client has sent that netd has not yet consumed.
    client_to_server: BytesMut,
    /// Bytes netd has written toward the client.
    server_to_client: BytesMut,
    /// The server-side TCP port this connection targets.
    pub tcp_port: u16,
    /// Whether either side has closed.
    pub closed: bool,
}

/// The shared network state: connections plus per-side buffers.
///
/// Lives in an `Arc<Mutex<…>>` shared between the netd service (inside the
/// kernel) and the external [`crate::driver::ClientDriver`].
#[derive(Debug, Default)]
pub struct SimNet {
    conns: BTreeMap<ConnId, SimConn>,
    next_conn: ConnId,
    /// Total bytes ever carried (god-mode stat).
    pub bytes_carried: u64,
    /// Connections the server side refused at accept time — no listener,
    /// or overload shedding — closed before carrying any response byte
    /// (god-mode stat; the client driver's retry path keys off the
    /// closed-with-empty-response signature).
    pub refused: u64,
}

impl SimNet {
    /// Creates an empty network.
    pub fn new() -> SimNet {
        SimNet::default()
    }

    /// Client side: opens a connection to `tcp_port` carrying `request`.
    pub fn client_open(&mut self, tcp_port: u16, request: &[u8]) -> ConnId {
        let id = self.next_conn;
        self.next_conn += 1;
        let mut conn = SimConn {
            tcp_port,
            ..SimConn::default()
        };
        conn.client_to_server.extend_from_slice(request);
        self.bytes_carried += request.len() as u64;
        self.conns.insert(id, conn);
        id
    }

    /// Client side: sends additional request bytes.
    pub fn client_send(&mut self, conn: ConnId, data: &[u8]) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if !c.closed {
                c.client_to_server.extend_from_slice(data);
                self.bytes_carried += data.len() as u64;
            }
        }
    }

    /// Client side: takes everything the server has written so far.
    pub fn client_take_response(&mut self, conn: ConnId) -> Bytes {
        match self.conns.get_mut(&conn) {
            Some(c) => c.server_to_client.split().freeze(),
            None => Bytes::new(),
        }
    }

    /// Client side: peeks at the response without consuming it.
    pub fn client_peek_response(&self, conn: ConnId) -> &[u8] {
        self.conns
            .get(&conn)
            .map(|c| c.server_to_client.as_ref())
            .unwrap_or(&[])
    }

    /// Server side (netd): reads up to `max` pending request bytes.
    pub fn server_read(&mut self, conn: ConnId, max: usize) -> Bytes {
        match self.conns.get_mut(&conn) {
            Some(c) => {
                let take = max.min(c.client_to_server.len());
                c.client_to_server.split_to(take).freeze()
            }
            None => Bytes::new(),
        }
    }

    /// Server side (netd): writes response bytes toward the client.
    pub fn server_write(&mut self, conn: ConnId, data: &[u8]) -> usize {
        match self.conns.get_mut(&conn) {
            Some(c) if !c.closed => {
                c.server_to_client.extend_from_slice(data);
                self.bytes_carried += data.len() as u64;
                data.len()
            }
            _ => 0,
        }
    }

    /// Server side (netd): peeks at up to `max` pending request bytes
    /// without consuming them (ok-demux's header read, §7.2 step 3).
    pub fn server_peek(&self, conn: ConnId, max: usize) -> Bytes {
        match self.conns.get(&conn) {
            Some(c) => {
                let take = max.min(c.client_to_server.len());
                Bytes::copy_from_slice(&c.client_to_server[..take])
            }
            None => Bytes::new(),
        }
    }

    /// Server side: pending request bytes (SELECT's answer).
    pub fn server_pending(&self, conn: ConnId) -> usize {
        self.conns
            .get(&conn)
            .map(|c| c.client_to_server.len())
            .unwrap_or(0)
    }

    /// Marks a connection closed (either side).
    pub fn close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.closed = true;
        }
    }

    /// Removes a fully drained, closed connection.
    pub fn reap(&mut self, conn: ConnId) {
        self.conns.remove(&conn);
    }

    /// Whether a connection exists and is open.
    pub fn is_open(&self, conn: ConnId) -> bool {
        self.conns.get(&conn).map(|c| !c.closed).unwrap_or(false)
    }

    /// Number of live connection records.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_carries_request() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(net.server_pending(c), 18);
        let got = net.server_read(c, 4);
        assert_eq!(&got[..], b"GET ");
        assert_eq!(net.server_pending(c), 14);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"");
        assert_eq!(net.server_write(c, b"HTTP/1.0 200 OK\r\n"), 17);
        net.client_send(c, b"more");
        assert_eq!(net.client_take_response(c).as_ref(), b"HTTP/1.0 200 OK\r\n");
        assert_eq!(net.client_take_response(c).len(), 0, "drained");
        assert_eq!(net.server_read(c, 100).as_ref(), b"more");
    }

    #[test]
    fn close_stops_traffic() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"x");
        net.close(c);
        assert!(!net.is_open(c));
        assert_eq!(net.server_write(c, b"late"), 0);
        net.client_send(c, b"late");
        // Pre-close bytes remain readable; post-close sends were ignored.
        assert_eq!(net.server_read(c, 10).as_ref(), b"x");
    }

    #[test]
    fn conn_ids_are_distinct() {
        let mut net = SimNet::new();
        let a = net.client_open(80, b"");
        let b = net.client_open(81, b"");
        assert_ne!(a, b);
        assert_eq!(net.conn_count(), 2);
        net.reap(a);
        assert_eq!(net.conn_count(), 1);
    }

    #[test]
    fn rss_lane_is_stable_and_in_range() {
        for conn in 0..256u64 {
            for &lanes in &[1usize, 2, 3, 4, 8] {
                let lane = rss_lane(conn, 80, lanes);
                assert!(lane < lanes);
                // Pure function of the flow: every packet, same lane.
                assert_eq!(lane, rss_lane(conn, 80, lanes));
            }
            assert_eq!(rss_lane(conn, 80, 1), 0);
        }
    }

    #[test]
    fn rss_lane_spreads_connections() {
        // 256 consecutive conn ids over 4 lanes: no lane may be starved
        // or hoard the traffic (a NIC-grade hash keeps queues balanced).
        let mut mq = MultiQueue::new(4);
        for conn in 0..256u64 {
            mq.accept(conn, 80);
        }
        for (lane, &count) in mq.accepts().iter().enumerate() {
            assert!(
                (32..=96).contains(&count),
                "lane {lane} got {count} of 256 connections"
            );
        }
    }

    #[test]
    fn bytes_carried_accumulates() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"12345");
        net.server_write(c, b"123");
        assert_eq!(net.bytes_carried, 8);
    }
}
