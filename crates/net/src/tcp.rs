//! The simulated TCP substrate.
//!
//! Substitutes for the paper's LWIP port and E1000 driver (§7.7). The model
//! is byte-stream connections with two buffers each; connection setup,
//! teardown, and data movement are what netd's cost accounting measures, so
//! wire-level details (segments, retransmission, congestion control) are
//! deliberately absent — no figure in the paper depends on them.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

/// Identifies a simulated TCP connection.
pub type ConnId = u64;

/// One byte-stream connection between the external client and netd.
#[derive(Debug, Default)]
pub struct SimConn {
    /// Bytes the client has sent that netd has not yet consumed.
    client_to_server: BytesMut,
    /// Bytes netd has written toward the client.
    server_to_client: BytesMut,
    /// The server-side TCP port this connection targets.
    pub tcp_port: u16,
    /// Whether either side has closed.
    pub closed: bool,
}

/// The shared network state: connections plus per-side buffers.
///
/// Lives in an `Arc<Mutex<…>>` shared between the netd service (inside the
/// kernel) and the external [`crate::driver::ClientDriver`].
#[derive(Debug, Default)]
pub struct SimNet {
    conns: BTreeMap<ConnId, SimConn>,
    next_conn: ConnId,
    /// Total bytes ever carried (god-mode stat).
    pub bytes_carried: u64,
}

impl SimNet {
    /// Creates an empty network.
    pub fn new() -> SimNet {
        SimNet::default()
    }

    /// Client side: opens a connection to `tcp_port` carrying `request`.
    pub fn client_open(&mut self, tcp_port: u16, request: &[u8]) -> ConnId {
        let id = self.next_conn;
        self.next_conn += 1;
        let mut conn = SimConn {
            tcp_port,
            ..SimConn::default()
        };
        conn.client_to_server.extend_from_slice(request);
        self.bytes_carried += request.len() as u64;
        self.conns.insert(id, conn);
        id
    }

    /// Client side: sends additional request bytes.
    pub fn client_send(&mut self, conn: ConnId, data: &[u8]) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if !c.closed {
                c.client_to_server.extend_from_slice(data);
                self.bytes_carried += data.len() as u64;
            }
        }
    }

    /// Client side: takes everything the server has written so far.
    pub fn client_take_response(&mut self, conn: ConnId) -> Bytes {
        match self.conns.get_mut(&conn) {
            Some(c) => c.server_to_client.split().freeze(),
            None => Bytes::new(),
        }
    }

    /// Client side: peeks at the response without consuming it.
    pub fn client_peek_response(&self, conn: ConnId) -> &[u8] {
        self.conns
            .get(&conn)
            .map(|c| c.server_to_client.as_ref())
            .unwrap_or(&[])
    }

    /// Server side (netd): reads up to `max` pending request bytes.
    pub fn server_read(&mut self, conn: ConnId, max: usize) -> Bytes {
        match self.conns.get_mut(&conn) {
            Some(c) => {
                let take = max.min(c.client_to_server.len());
                c.client_to_server.split_to(take).freeze()
            }
            None => Bytes::new(),
        }
    }

    /// Server side (netd): writes response bytes toward the client.
    pub fn server_write(&mut self, conn: ConnId, data: &[u8]) -> usize {
        match self.conns.get_mut(&conn) {
            Some(c) if !c.closed => {
                c.server_to_client.extend_from_slice(data);
                self.bytes_carried += data.len() as u64;
                data.len()
            }
            _ => 0,
        }
    }

    /// Server side (netd): peeks at up to `max` pending request bytes
    /// without consuming them (ok-demux's header read, §7.2 step 3).
    pub fn server_peek(&self, conn: ConnId, max: usize) -> Bytes {
        match self.conns.get(&conn) {
            Some(c) => {
                let take = max.min(c.client_to_server.len());
                Bytes::copy_from_slice(&c.client_to_server[..take])
            }
            None => Bytes::new(),
        }
    }

    /// Server side: pending request bytes (SELECT's answer).
    pub fn server_pending(&self, conn: ConnId) -> usize {
        self.conns
            .get(&conn)
            .map(|c| c.client_to_server.len())
            .unwrap_or(0)
    }

    /// Marks a connection closed (either side).
    pub fn close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.closed = true;
        }
    }

    /// Removes a fully drained, closed connection.
    pub fn reap(&mut self, conn: ConnId) {
        self.conns.remove(&conn);
    }

    /// Whether a connection exists and is open.
    pub fn is_open(&self, conn: ConnId) -> bool {
        self.conns.get(&conn).map(|c| !c.closed).unwrap_or(false)
    }

    /// Number of live connection records.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_carries_request() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(net.server_pending(c), 18);
        let got = net.server_read(c, 4);
        assert_eq!(&got[..], b"GET ");
        assert_eq!(net.server_pending(c), 14);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"");
        assert_eq!(net.server_write(c, b"HTTP/1.0 200 OK\r\n"), 17);
        net.client_send(c, b"more");
        assert_eq!(net.client_take_response(c).as_ref(), b"HTTP/1.0 200 OK\r\n");
        assert_eq!(net.client_take_response(c).len(), 0, "drained");
        assert_eq!(net.server_read(c, 100).as_ref(), b"more");
    }

    #[test]
    fn close_stops_traffic() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"x");
        net.close(c);
        assert!(!net.is_open(c));
        assert_eq!(net.server_write(c, b"late"), 0);
        net.client_send(c, b"late");
        // Pre-close bytes remain readable; post-close sends were ignored.
        assert_eq!(net.server_read(c, 10).as_ref(), b"x");
    }

    #[test]
    fn conn_ids_are_distinct() {
        let mut net = SimNet::new();
        let a = net.client_open(80, b"");
        let b = net.client_open(81, b"");
        assert_ne!(a, b);
        assert_eq!(net.conn_count(), 2);
        net.reap(a);
        assert_eq!(net.conn_count(), 1);
    }

    #[test]
    fn bytes_carried_accumulates() {
        let mut net = SimNet::new();
        let c = net.client_open(80, b"12345");
        net.server_write(c, b"123");
        assert_eq!(net.bytes_carried, 8);
    }
}
