//! The netd wire protocol (§7.7).
//!
//! "Once a process has a port to an open connection, it may perform READ
//! and WRITE operations to transfer data, CONTROL operations to close the
//! connection or change the low-water mark, and SELECT operations to
//! determine available buffer space. ... When a process tells netd to add a
//! taint handle to a connection, later messages sent in response to
//! operations on that connection will be contaminated with the taint handle
//! at level 3."
//!
//! Requests to a connection's own port `uC`; LISTEN to netd's control port;
//! device events are injected by the external world.

use asbestos_kernel::{Handle, Payload, Value};

/// A message in the netd protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    // -------------------- device events (injected) --------------------
    /// A client opened a TCP connection to `tcp_port`.
    DevNewConn {
        /// Substrate connection id.
        conn: u64,
        /// Server-side TCP port.
        tcp_port: u16,
    },

    // -------------------- application → netd --------------------
    /// Register `notify` to receive new-connection notifications for
    /// `tcp_port` (sent to netd's control port).
    Listen {
        /// TCP port to listen on.
        tcp_port: u16,
        /// Where netd should announce new connections.
        notify: Handle,
    },
    /// Read up to `max` request bytes; netd replies `ReadR` to `reply`.
    Read {
        /// Maximum bytes.
        max: u64,
        /// Reply port (granted to netd at ⋆ alongside this message).
        reply: Handle,
        /// Peek without consuming (ok-demux reads the head this way so the
        /// worker can still read the whole request, §7.2 steps 3 and 8).
        peek: bool,
    },
    /// Write response bytes to the connection.
    Write {
        /// Payload (a refcounted view; encoding and decoding share it).
        bytes: Payload,
    },
    /// Attach a taint handle: future replies for this connection are
    /// contaminated `taint 3`, and the connection port accepts `taint 3`
    /// senders (§7.2 step 5).
    AddTaint {
        /// The user taint handle (granted to netd at ⋆ with this message).
        taint: Handle,
    },
    /// Close the connection (CONTROL).
    Close,
    /// Ask for pending input bytes; netd replies `SelectR` to `reply`.
    Select {
        /// Reply port.
        reply: Handle,
    },

    // -------------------- netd → application --------------------
    /// New connection announcement; netd grants the receiver `port ⋆`.
    NewConn {
        /// The connection's Asbestos port `uC`.
        port: Handle,
    },
    /// Read reply: the requested bytes (possibly empty).
    ReadR {
        /// Data read (a refcounted view of the NIC buffer; the bytes
        /// were written once, at the substrate edge).
        bytes: Payload,
    },
    /// Select reply: pending input bytes.
    SelectR {
        /// Bytes available to read.
        available: u64,
    },
}

impl NetMsg {
    /// Encodes to a [`Value`] payload.
    pub fn to_value(&self) -> Value {
        match self {
            NetMsg::DevNewConn { conn, tcp_port } => Value::List(vec![
                Value::Str("dev-new-conn".into()),
                Value::U64(*conn),
                Value::U64(u64::from(*tcp_port)),
            ]),
            NetMsg::Listen { tcp_port, notify } => Value::List(vec![
                Value::Str("listen".into()),
                Value::U64(u64::from(*tcp_port)),
                Value::Handle(*notify),
            ]),
            NetMsg::Read { max, reply, peek } => Value::List(vec![
                Value::Str("read".into()),
                Value::U64(*max),
                Value::Handle(*reply),
                Value::Bool(*peek),
            ]),
            NetMsg::Write { bytes } => Value::List(vec![
                Value::Str("write".into()),
                Value::Bytes(bytes.clone()),
            ]),
            NetMsg::AddTaint { taint } => {
                Value::List(vec![Value::Str("add-taint".into()), Value::Handle(*taint)])
            }
            NetMsg::Close => Value::List(vec![Value::Str("close".into())]),
            NetMsg::Select { reply } => {
                Value::List(vec![Value::Str("select".into()), Value::Handle(*reply)])
            }
            NetMsg::NewConn { port } => {
                Value::List(vec![Value::Str("new-conn".into()), Value::Handle(*port)])
            }
            NetMsg::ReadR { bytes } => Value::List(vec![
                Value::Str("read-r".into()),
                Value::Bytes(bytes.clone()),
            ]),
            NetMsg::SelectR { available } => {
                Value::List(vec![Value::Str("select-r".into()), Value::U64(*available)])
            }
        }
    }

    /// Decodes from a [`Value`] payload.
    pub fn from_value(value: &Value) -> Option<NetMsg> {
        let items = value.as_list()?;
        let tag = items.first()?.as_str()?;
        match tag {
            "dev-new-conn" => Some(NetMsg::DevNewConn {
                conn: items.get(1)?.as_u64()?,
                tcp_port: u16::try_from(items.get(2)?.as_u64()?).ok()?,
            }),
            "listen" => Some(NetMsg::Listen {
                tcp_port: u16::try_from(items.get(1)?.as_u64()?).ok()?,
                notify: items.get(2)?.as_handle()?,
            }),
            "read" => Some(NetMsg::Read {
                max: items.get(1)?.as_u64()?,
                reply: items.get(2)?.as_handle()?,
                peek: items.get(3)?.as_bool()?,
            }),
            "write" => Some(NetMsg::Write {
                bytes: items.get(1)?.as_payload()?.clone(),
            }),
            "add-taint" => Some(NetMsg::AddTaint {
                taint: items.get(1)?.as_handle()?,
            }),
            "close" => Some(NetMsg::Close),
            "select" => Some(NetMsg::Select {
                reply: items.get(1)?.as_handle()?,
            }),
            "new-conn" => Some(NetMsg::NewConn {
                port: items.get(1)?.as_handle()?,
            }),
            "read-r" => Some(NetMsg::ReadR {
                bytes: items.get(1)?.as_payload()?.clone(),
            }),
            "select-r" => Some(NetMsg::SelectR {
                available: items.get(1)?.as_u64()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let h = Handle::from_raw(0x42);
        let msgs = vec![
            NetMsg::DevNewConn {
                conn: 7,
                tcp_port: 80,
            },
            NetMsg::Listen {
                tcp_port: 80,
                notify: h,
            },
            NetMsg::Read {
                max: 512,
                reply: h,
                peek: false,
            },
            NetMsg::Read {
                max: 64,
                reply: h,
                peek: true,
            },
            NetMsg::Write {
                bytes: vec![1, 2, 3].into(),
            },
            NetMsg::AddTaint { taint: h },
            NetMsg::Close,
            NetMsg::Select { reply: h },
            NetMsg::NewConn { port: h },
            NetMsg::ReadR {
                bytes: vec![9].into(),
            },
            NetMsg::SelectR { available: 5 },
        ];
        for msg in msgs {
            assert_eq!(NetMsg::from_value(&msg.to_value()), Some(msg));
        }
    }

    #[test]
    fn payload_roundtrip_shares_the_buffer() {
        let original: Payload = vec![7u8; 32].into();
        let msg = NetMsg::Write {
            bytes: original.clone(),
        };
        let before = Payload::deep_copies();
        let decoded = NetMsg::from_value(&msg.to_value());
        let Some(NetMsg::Write { bytes }) = decoded else {
            panic!("roundtrip failed");
        };
        assert_eq!(bytes.backing_id(), original.backing_id());
        assert_eq!(
            Payload::deep_copies(),
            before,
            "encode/decode must move refcounts, not bytes"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(NetMsg::from_value(&Value::Unit), None);
        assert_eq!(
            NetMsg::from_value(&Value::List(vec![Value::Str("bogus".into())])),
            None
        );
        // Out-of-range TCP port.
        assert_eq!(
            NetMsg::from_value(&Value::List(vec![
                Value::Str("dev-new-conn".into()),
                Value::U64(1),
                Value::U64(1 << 20),
            ])),
            None
        );
    }
}
