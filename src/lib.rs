//! # asbestos
//!
//! A user-space reproduction of *Labels and Event Processes in the Asbestos
//! Operating System* (SOSP 2005). This facade crate re-exports the
//! workspace so applications and the examples can use one dependency:
//!
//! * [`labels`] — the §5 label algebra: [`labels::Label`],
//!   [`labels::Handle`], [`labels::Level`], and the Figure 4 operations;
//! * [`kernel`] — the kernel simulator: processes, ports, labeled IPC with
//!   delivery-time checks and silent drops, event processes with
//!   copy-on-write memory, cycle and memory accounting;
//! * [`net`] — the simulated TCP substrate and the netd network server;
//! * [`fs`] — the labeled multi-user file server of §5.2–§5.4;
//! * [`db`] — the relational engine and the ok-dbproxy label gateway;
//! * [`okws`] — the OK web server: launcher, ok-demux, idd, event-process
//!   workers, and §7.6 declassifiers;
//! * [`baseline`] — the Apache / Mod-Apache comparison models of §9.2.
//!
//! Start with the `quickstart` example, or see README.md for the tour and
//! DESIGN.md for the full system inventory.
//!
//! ```
//! use asbestos::kernel::{Kernel, Category, Value, Label};
//! use asbestos::kernel::util::Recorder;
//!
//! let mut kernel = Kernel::new(1);
//! let (inbox, log) = Recorder::new("inbox.port");
//! kernel.spawn("inbox", Category::Other, Box::new(inbox));
//! let port = kernel.global_env("inbox.port").unwrap().as_handle().unwrap();
//! kernel.inject(port, Value::Str("hello".into()));
//! kernel.run();
//! assert_eq!(log.lock().unwrap().len(), 1);
//! ```

pub use asbestos_baseline as baseline;
pub use asbestos_db as db;
pub use asbestos_fs as fs;
pub use asbestos_kernel as kernel;
pub use asbestos_labels as labels;
pub use asbestos_net as net;
pub use asbestos_okws as okws;
