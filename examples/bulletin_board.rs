//! A bulletin-board system — one of §2's motivating large-scale server
//! applications ("Examples include Web commerce and bulletin-board
//! systems") — assembled from the OKWS pieces:
//!
//! * drafts are private rows (ok-dbproxy ownership);
//! * posting publishes through a §7.6 declassifier worker;
//! * reads go through the §2 shared cache, which isolates users.
//!
//! Run with: `cargo run --release --example bulletin_board`

use asbestos::db::SqlValue;
use asbestos::kernel::Kernel;
use asbestos::net::HttpRequest;
use asbestos::okws::logic::{Action, SessionStore, WorkerLogic};
use asbestos::okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

/// The board service: `?draft=` saves a private draft; `?post=1` publishes
/// the saved draft; `?read=1` lists what this user may see.
struct Board;

impl Board {
    const TABLE: &'static str = "CREATE TABLE board (author, text)";
}

impl WorkerLogic for Board {
    fn on_request(&self, session: &mut dyn SessionStore, req: &HttpRequest) -> Action {
        if let Some(draft) = req.param("draft") {
            // Keep the draft in event-process session memory: private by
            // construction (§6), not even in the database yet.
            let bytes = draft.as_bytes();
            session.write(0, &(bytes.len() as u32).to_le_bytes());
            session.write(4, &bytes[..bytes.len().min(512)]);
            return Action::ok(&b"draft saved"[..]);
        }
        if req.param("post").is_some() {
            let len = u32::from_le_bytes(session.read(0, 4).try_into().expect("4 bytes")) as usize;
            if len == 0 {
                return Action::error(400, "no draft to post");
            }
            let text = String::from_utf8_lossy(&session.read(4, len)).into_owned();
            // As a declassifier worker, this INSERT lands with owner id 0 —
            // world-readable. As a plain worker it would stay private.
            return Action::DbExec {
                sql: "INSERT INTO board VALUES (?, ?)".into(),
                params: vec![
                    SqlValue::Text(req.param("user").unwrap_or("?").into()),
                    SqlValue::Text(text),
                ],
            };
        }
        if req.param("read").is_some() {
            return Action::DbQuery {
                sql: "SELECT author, text FROM board".into(),
                params: vec![],
            };
        }
        Action::error(400, "need draft=, post=1, or read=1")
    }

    fn on_db_exec(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        ok: bool,
        _affected: u64,
    ) -> Action {
        if ok {
            Action::ok(&b"posted"[..])
        } else {
            Action::error(403, "refused")
        }
    }

    fn on_db_rows(
        &self,
        _session: &mut dyn SessionStore,
        _req: &HttpRequest,
        rows: &[Vec<SqlValue>],
    ) -> Action {
        let mut out = String::new();
        for row in rows {
            out.push_str(row[0].as_text().unwrap_or("?"));
            out.push_str(": ");
            out.push_str(row[1].as_text().unwrap_or(""));
            out.push('\n');
        }
        Action::ok(out.into_bytes())
    }
}

fn main() {
    let mut kernel = Kernel::new(1088);
    let mut config = OkwsConfig::new(80);
    // "board" keeps everything private; "publish" is the declassifier.
    config
        .services
        .push(ServiceSpec::new("board", || Box::new(Board)));
    config
        .services
        .push(ServiceSpec::new("publish", || Box::new(Board)).declassifier());
    config.worker_tables.push(Board::TABLE.to_string());
    config.users.push(("alice".into(), "a-pw".into()));
    config.users.push(("bob".into(), "b-pw".into()));
    config.with_cache = true;
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Alice drafts privately, then posts through the declassifier. The
    // draft lives in her session event process; the board row is public.
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "publish",
            "alice",
            "a-pw",
            &[("draft", "labels+are+great")],
        )
        .unwrap();
    println!("alice: {}", String::from_utf8_lossy(&body));
    let (_, body) = client
        .request_sync(&mut kernel, "publish", "alice", "a-pw", &[("post", "1")])
        .unwrap();
    println!("alice: {}", String::from_utf8_lossy(&body));

    // Bob also drafts — but through the *private* board worker, and posts
    // there: his row stays owned by him.
    client
        .request_sync(
            &mut kernel,
            "board",
            "bob",
            "b-pw",
            &[("draft", "bob+private+note")],
        )
        .unwrap();
    client
        .request_sync(&mut kernel, "board", "bob", "b-pw", &[("post", "1")])
        .unwrap();

    // Everyone reads the board. Alice's published post is visible to both;
    // bob's private post is visible only to bob.
    let (_, body) = client
        .request_sync(&mut kernel, "board", "alice", "a-pw", &[("read", "1")])
        .unwrap();
    println!("alice reads:\n{}", String::from_utf8_lossy(&body));
    assert!(body.starts_with(b"alice: labels are great\n"));
    assert!(!String::from_utf8_lossy(&body).contains("bob"));

    let (_, body) = client
        .request_sync(&mut kernel, "board", "bob", "b-pw", &[("read", "1")])
        .unwrap();
    println!("bob reads:\n{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("alice: labels are great"));
    assert!(text.contains("bob: bob private note"));

    println!(
        "bulletin_board OK ({} kernel label drops kept drafts private)",
        kernel.stats().dropped_label_check
    );
}
