//! Multi-level security on Asbestos labels (§5.2, "The four levels").
//!
//! "Multi-level policies requiring hierarchical sensitivity classification
//! can be emulated in Asbestos using multiple compartments. For instance,
//! to support unclassified, secret, and top-secret levels, the security
//! administrator can use two compartments: one for secret, s, and one for
//! top-secret, t."
//!
//! Run with: `cargo run --example mls`

use std::sync::Arc;
use std::sync::Mutex;

use asbestos::kernel::util::service_with_start;
use asbestos::kernel::{Category, Handle, Kernel, Label, Level, ProcessId, Value};

/// Builds a send label for a clearance: what the process has seen.
fn send_label(s: Handle, t: Handle, clearance: &str) -> Label {
    match clearance {
        "unclassified" => Label::default_send(),
        "secret" => Label::from_pairs(Level::L1, &[(s, Level::L3)]),
        "top-secret" => Label::from_pairs(Level::L1, &[(s, Level::L3), (t, Level::L3)]),
        other => panic!("unknown clearance {other}"),
    }
}

/// Builds a receive label for a clearance: what the process may see.
fn recv_label(s: Handle, t: Handle, clearance: &str) -> Label {
    match clearance {
        "unclassified" => Label::default_recv(),
        "secret" => Label::from_pairs(Level::L2, &[(s, Level::L3)]),
        "top-secret" => Label::from_pairs(Level::L2, &[(s, Level::L3), (t, Level::L3)]),
        other => panic!("unknown clearance {other}"),
    }
}

fn main() {
    let mut kernel = Kernel::new(1962);

    // The security administrator's two compartments.
    let admin = kernel.spawn(
        "security-admin",
        Category::Other,
        service_with_start(
            |sys| {
                let s = sys.new_handle();
                let t = sys.new_handle();
                sys.publish_env("mls.secret", Value::Handle(s));
                sys.publish_env("mls.topsecret", Value::Handle(t));
            },
            |_, _| {},
        ),
    );
    kernel.run();
    let _ = admin;
    let s = kernel
        .global_env("mls.secret")
        .unwrap()
        .as_handle()
        .unwrap();
    let t = kernel
        .global_env("mls.topsecret")
        .unwrap()
        .as_handle()
        .unwrap();

    // One mailbox process per clearance, logging what it receives.
    let logs: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut pids: Vec<(String, ProcessId)> = Vec::new();
    for clearance in ["unclassified", "secret", "top-secret"] {
        let tag = clearance.to_string();
        let sink = logs.clone();
        let pid = kernel.spawn(
            &format!("mailbox-{clearance}"),
            Category::Other,
            service_with_start(
                {
                    let tag = tag.clone();
                    move |sys| {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        sys.publish_env(&format!("box.{tag}"), Value::Handle(p));
                    }
                },
                move |_sys, msg| {
                    if let Some(text) = msg.body.as_str() {
                        sink.lock().unwrap().push((tag.clone(), text.to_string()));
                    }
                },
            ),
        );
        pids.push((clearance.to_string(), pid));
    }
    kernel.run();
    // Assign clearances out of band (the administrator's prerogative, §5.2).
    for (clearance, pid) in &pids {
        kernel.set_process_labels(
            *pid,
            Some(send_label(s, t, clearance)),
            Some(recv_label(s, t, clearance)),
        );
    }

    // A writer per clearance sends a message to every mailbox — *after*
    // its clearance label has been assigned (the trigger message keeps the
    // sends from racing the out-of-band label assignment).
    for clearance in ["unclassified", "secret", "top-secret"] {
        let writer = kernel.spawn(
            &format!("writer-{clearance}"),
            Category::Other,
            service_with_start(
                {
                    let clearance = clearance.to_string();
                    move |sys| {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        sys.publish_env(&format!("writer.{clearance}"), Value::Handle(p));
                    }
                },
                {
                    let clearance = clearance.to_string();
                    move |sys, _msg| {
                        for target in ["unclassified", "secret", "top-secret"] {
                            let port = sys
                                .env(&format!("box.{target}"))
                                .unwrap()
                                .as_handle()
                                .unwrap();
                            sys.send(port, Value::Str(format!("{clearance} report")))
                                .unwrap();
                        }
                    }
                },
            ),
        );
        kernel.run();
        kernel.set_process_labels(writer, Some(send_label(s, t, clearance)), None);
        let trigger = kernel
            .global_env(&format!("writer.{clearance}"))
            .unwrap()
            .as_handle()
            .unwrap();
        kernel.inject(trigger, Value::Unit);
        kernel.run();
    }

    // The Bell-LaPadula outcome: no read up, writes only flow up.
    println!("deliveries (writer clearance -> mailbox):");
    for (mailbox, text) in logs.lock().unwrap().iter() {
        println!("  {text:<22} -> {mailbox}");
    }
    let received = logs.lock().unwrap();
    let got = |mbx: &str, msg: &str| received.iter().any(|(m, x)| m == mbx && x.starts_with(msg));
    // Everyone receives unclassified reports.
    assert!(got("unclassified", "unclassified"));
    assert!(got("secret", "unclassified"));
    assert!(got("top-secret", "unclassified"));
    // Secret reaches secret and above.
    assert!(!got("unclassified", "secret"));
    assert!(got("secret", "secret"));
    assert!(got("top-secret", "secret"));
    // Top-secret reaches only top-secret.
    assert!(!got("unclassified", "top-secret"));
    assert!(!got("secret", "top-secret"));
    assert!(got("top-secret", "top-secret"));
    println!(
        "\n{} cross-level sends dropped by the kernel",
        kernel.stats().dropped_label_check
    );
    println!("mls OK: the *-property holds");
}
