//! The §5.5 mail-reader example: port labels as kernel-side message
//! filters.
//!
//! "Imagine a mail reader that starts an untrusted program to read an
//! attachment. The mail reader can, and should, accept contamination from
//! other system processes, such as the filesystem; but though it needs to
//! communicate with the attachment program, it doesn't want to accept
//! contamination from it. A compromised attachment that develops a high
//! taint should lose the ability to send to the mail reader."
//!
//! Run with: `cargo run --example mail_reader`

use std::sync::Arc;
use std::sync::Mutex;

use asbestos::kernel::util::service_with_start;
use asbestos::kernel::{Category, Kernel, Label, Level, Value};

fn main() {
    let mut kernel = Kernel::new(55);

    let inbox: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = inbox.clone();
    kernel.spawn(
        "mail-reader",
        Category::Other,
        service_with_start(
            |sys| {
                // A compartment for "things attachments have touched".
                let quarantine = sys.new_handle();
                sys.publish_env("quarantine", Value::Handle(quarantine));
                // The reader is happy to receive quarantine-tainted data on
                // its *process* label (it created the compartment, so it
                // may raise its own receive label)...
                sys.raise_recv(quarantine, Level::L3).unwrap();
                // ...but its command port refuses it: p_R = {quarantine 1, 3}.
                // The kernel filters before delivery — the reader's own code
                // never sees attachment-tainted traffic on this port.
                let filtered =
                    sys.new_port(Label::from_pairs(Level::L3, &[(quarantine, Level::L1)]));
                sys.set_port_label(
                    filtered,
                    Label::from_pairs(Level::L3, &[(quarantine, Level::L1)]),
                )
                .unwrap();
                sys.publish_env("reader.port", Value::Handle(filtered));
            },
            move |_sys, msg| {
                if let Some(text) = msg.body.as_str() {
                    sink.lock().unwrap().push(text.to_string());
                }
            },
        ),
    );
    kernel.run();
    let quarantine = kernel
        .global_env("quarantine")
        .unwrap()
        .as_handle()
        .unwrap();
    let reader_port = kernel
        .global_env("reader.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // The filesystem: a clean system service; its messages flow normally.
    kernel.spawn(
        "filesystem",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(reader_port, Value::Str("new mail: 2 messages".into()))
                    .unwrap();
            },
            |_, _| {},
        ),
    );

    // The attachment viewer: quarantined (contaminated at birth by the
    // reader's compartment — assigned out of band before it ever runs).
    let attachment = kernel.spawn(
        "attachment-viewer",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("viewer.port", Value::Handle(p));
            },
            move |sys, _msg| {
                // A compromised viewer tries to inject a spoofed status
                // message into the mail reader.
                sys.send(reader_port, Value::Str("FAKE: all mail deleted".into()))
                    .unwrap();
            },
        ),
    );
    kernel.run();
    kernel.set_process_labels(
        attachment,
        Some(Label::from_pairs(Level::L1, &[(quarantine, Level::L3)])),
        None,
    );
    // Hand the viewer an "attachment" to open; its spoof attempt follows.
    let viewer_port = kernel
        .global_env("viewer.port")
        .unwrap()
        .as_handle()
        .unwrap();
    kernel.inject(viewer_port, Value::Str("attachment bytes".into()));
    kernel.run();

    println!("mail reader inbox: {:?}", inbox.lock().unwrap());
    assert_eq!(*inbox.lock().unwrap(), vec!["new mail: 2 messages"]);
    assert_eq!(kernel.stats().dropped_label_check, 1);
    println!("attachment's spoof was dropped by the port label — mail_reader OK");
}
