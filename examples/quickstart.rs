//! Quickstart: the §5.2 privacy example from the paper, on the public API.
//!
//! Builds the Figure 2 world — a trusted multi-user file server, shells for
//! users `u` and `v`, and `u`'s terminal — and shows information-flow
//! control doing its job: `u`'s data flows to `u`'s terminal, `v`'s data
//! cannot, and nobody can leak through an intermediary.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::sync::Mutex;

use asbestos::fs::{spawn_fs, FsMsg};
use asbestos::kernel::util::service_with_start;
use asbestos::kernel::{Category, Kernel, Label, Level, SendArgs, Value};

fn main() {
    let mut kernel = Kernel::new(2026);

    // The trusted file server (holds ⋆ for every user's taint compartment).
    let fs = spawn_fs(&mut kernel);
    println!(
        "file server up; system integrity compartment s = {}",
        fs.system
    );

    // u's terminal: an output device only u's information may reach.
    let printed = Arc::new(Mutex::new(Vec::<String>::new()));
    let sink = printed.clone();
    let terminal = kernel.spawn(
        "u-terminal",
        Category::Other,
        service_with_start(
            |sys| {
                let port = sys.new_port(Label::top());
                sys.set_port_label(port, Label::top()).unwrap();
                sys.publish_env("terminal.port", Value::Handle(port));
            },
            move |_sys, msg| {
                if let Some(bytes) = msg.body.as_bytes() {
                    sink.lock()
                        .unwrap()
                        .push(String::from_utf8_lossy(bytes).into_owned());
                }
            },
        ),
    );

    // A shell per user. Each shell registers with the file server, then
    // executes injected commands: write its diary, read it back, and
    // forward whatever it read to the terminal.
    for user in ["u", "v"] {
        kernel.spawn(
            &format!("{user}-shell"),
            Category::Other,
            service_with_start(
                {
                    let user = user.to_string();
                    move |sys| {
                        let cmd = sys.new_port(Label::top());
                        sys.set_port_label(cmd, Label::top()).unwrap();
                        sys.publish_env(&format!("{user}.cmd"), Value::Handle(cmd));
                        let reply = sys.new_port(Label::top());
                        sys.set_port_label(reply, Label::top()).unwrap();
                        sys.set_env("reply", Value::Handle(reply));
                        let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                        sys.send(
                            fs,
                            FsMsg::AddUser {
                                user: user.clone(),
                                reply,
                            }
                            .to_value(),
                        )
                        .unwrap();
                    }
                },
                move |sys, msg| {
                    if let Some(FsMsg::AddUserR { taint, grant }) = FsMsg::from_value(&msg.body) {
                        // The server granted us uG 0 (speak-for) and raised
                        // our receive label for uT; remember the handles.
                        sys.set_env("taint", Value::Handle(taint));
                        sys.set_env("grant", Value::Handle(grant));
                        return;
                    }
                    if let Some(FsMsg::ReadR { data: Some(d), .. }) = FsMsg::from_value(&msg.body) {
                        sys.set_env("last-read", Value::Bytes(d));
                        return;
                    }
                    let Some(items) = msg.body.as_list() else {
                        return;
                    };
                    match items.first().and_then(Value::as_str) {
                        Some("write") => {
                            let name = items[1].as_str().unwrap().to_string();
                            let data = items[2].as_bytes().unwrap().to_vec();
                            let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                            let grant = sys.env("grant").unwrap().as_handle().unwrap();
                            // §5.4: prove we speak for the user with V(uG)=0.
                            let v = Label::from_pairs(Level::L3, &[(grant, Level::L0)]);
                            sys.send_args(
                                fs,
                                FsMsg::Write {
                                    name,
                                    data: data.into(),
                                    reply: None,
                                }
                                .to_value(),
                                &SendArgs::new().verify(v),
                            )
                            .unwrap();
                        }
                        Some("read") => {
                            let name = items[1].as_str().unwrap().to_string();
                            let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                            let reply = sys.env("reply").unwrap().as_handle().unwrap();
                            sys.send(fs, FsMsg::Read { name, reply }.to_value())
                                .unwrap();
                        }
                        Some("show") => {
                            // Forward the last read data to the terminal.
                            let term = sys.env("terminal.port").unwrap().as_handle().unwrap();
                            let data = sys.env("last-read").unwrap_or(Value::Unit);
                            sys.send(term, data).unwrap();
                        }
                        _ => {}
                    }
                },
            ),
        );
    }
    kernel.run();

    // Figure 2's label assignment for the terminal: receive label
    // {uT 3, 2} — willing to accept u's taint and nothing hotter.
    let u_shell = kernel.find_process("u-shell").unwrap();
    let u_taint = kernel.process(u_shell).env["taint"].as_handle().unwrap();
    kernel.set_process_labels(
        terminal,
        None,
        Some(Label::from_pairs(Level::L2, &[(u_taint, Level::L3)])),
    );

    let u_cmd = kernel.global_env("u.cmd").unwrap().as_handle().unwrap();
    let v_cmd = kernel.global_env("v.cmd").unwrap().as_handle().unwrap();

    // Create both users' files, then drive the shells.
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "u-diary".into(),
            user: "u".into(),
        }
        .to_value(),
    );
    kernel.inject(
        fs.port,
        FsMsg::Create {
            name: "v-notes".into(),
            user: "v".into(),
        }
        .to_value(),
    );
    kernel.run();

    // u writes a diary entry, reads it (the shell becomes uT-tainted), and
    // shows it on the terminal. Allowed: U_S = {uT 3, 1} ⊑ UT_R = {uT 3, 2}.
    // (Run between commands: "read" completes asynchronously, like every
    // Asbestos protocol round trip.)
    kernel.inject(
        u_cmd,
        Value::List(vec![
            "write".into(),
            "u-diary".into(),
            Value::Bytes(b"dear diary, labels work".to_vec().into()),
        ]),
    );
    kernel.run();
    kernel.inject(u_cmd, Value::List(vec!["read".into(), "u-diary".into()]));
    kernel.run();
    kernel.inject(u_cmd, Value::List(vec!["show".into()]));
    kernel.run();
    println!("u's terminal shows: {:?}", printed.lock().unwrap());
    assert_eq!(printed.lock().unwrap().len(), 1);

    // v writes and reads its own notes (the v shell becomes vT-tainted),
    // then tries to push them to u's terminal. The kernel drops the send:
    // V_S = {vT 3, 1} ⋢ UT_R = {uT 3, 2}.
    let drops_before = kernel.stats().dropped_label_check;
    kernel.inject(
        v_cmd,
        Value::List(vec![
            "write".into(),
            "v-notes".into(),
            Value::Bytes(b"v's secrets".to_vec().into()),
        ]),
    );
    kernel.run();
    kernel.inject(v_cmd, Value::List(vec!["read".into(), "v-notes".into()]));
    kernel.run();
    kernel.inject(v_cmd, Value::List(vec!["show".into()]));
    kernel.run();
    println!(
        "v's attempt to reach u's terminal: dropped by the kernel ({} label drop)",
        kernel.stats().dropped_label_check - drops_before
    );
    assert_eq!(
        printed.lock().unwrap().len(),
        1,
        "terminal saw nothing of v's"
    );

    // And v cannot even read u's diary: the tainted reply cannot be
    // delivered to a shell that never got uT acceptance.
    let drops_before = kernel.stats().dropped_label_check;
    kernel.inject(v_cmd, Value::List(vec!["read".into(), "u-diary".into()]));
    kernel.run();
    assert_eq!(kernel.stats().dropped_label_check, drops_before + 1);
    println!("v's read of u-diary: reply dropped by the kernel");

    println!("quickstart OK: information flowed only where the labels allow");
}
