//! The headline demo: the OK web server with kernel-enforced user
//! isolation (§7), including a §7.6 declassifier.
//!
//! Deploys OKWS with three services — a session store, a private profile
//! service, and a declassifier for publishing profiles — then walks through
//! logins, session caching, a cross-user read attempt, and declassification.
//!
//! Run with: `cargo run --release --example okws_demo [shards]`
//!
//! The optional `shards` argument (default 2) spreads the deployment
//! over that many parallel kernel shards; `1` reproduces the paper's
//! single-engine kernel exactly.

use asbestos::okws::logic::{EchoStore, Profile};
use asbestos::okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    let mut config = OkwsConfig::new(80).sharded(shards);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config
        .services
        .push(ServiceSpec::new("publish", || Box::new(Profile)).declassifier());
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    config.users.push(("alice".into(), "wonderland".into()));
    config.users.push(("bob".into(), "builder".into()));

    let (mut kernel, okws) = Okws::deploy(7, config);
    let mut client = OkwsClient::new(&okws);
    println!(
        "OKWS up on {} kernel shard(s): netd, ok-demux, idd, ok-dbproxy, 3 workers\n",
        kernel.num_shards()
    );

    // --- Session state, cached in an event process (§7.3) -------------
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "store",
            "alice",
            "wonderland",
            &[("data", "alice's first note")],
        )
        .expect("response");
    println!(
        "alice stores a note; previous state: {:?}",
        String::from_utf8_lossy(&body)
    );
    let (_, body) = client
        .request_sync(&mut kernel, "store", "alice", "wonderland", &[])
        .expect("response");
    println!(
        "alice's next request returns her cached session: {:?}\n",
        String::from_utf8_lossy(&body[..20.min(body.len())])
    );

    // --- Private state in the database (§7.5) -------------------------
    client
        .request_sync(
            &mut kernel,
            "profile",
            "alice",
            "wonderland",
            &[("set", "alice-private-bio")],
        )
        .expect("response");
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "profile",
            "alice",
            "wonderland",
            &[("get", "alice")],
        )
        .expect("response");
    println!(
        "alice reads her own profile: {:?}",
        String::from_utf8_lossy(&body)
    );

    // Bob asks for alice's profile through the same (untrusted!) worker
    // code: ok-dbproxy sends the row tainted aT 3 and the kernel drops it
    // at bob's event process. Bob sees nothing.
    let drops = kernel.stats().dropped_label_check;
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "profile",
            "bob",
            "builder",
            &[("get", "alice")],
        )
        .expect("response");
    println!(
        "bob reads alice's profile: {:?} ({} row dropped by the kernel)",
        String::from_utf8_lossy(&body),
        kernel.stats().dropped_label_check - drops
    );

    // --- Decentralized declassification (§7.6) ------------------------
    // Alice publishes through the declassifier worker, which holds aT ⋆
    // and writes a row with owner id 0.
    client
        .request_sync(
            &mut kernel,
            "publish",
            "alice",
            "wonderland",
            &[("set", "alice-public-bio")],
        )
        .expect("response");
    let (_, body) = client
        .request_sync(
            &mut kernel,
            "profile",
            "bob",
            "builder",
            &[("get", "alice")],
        )
        .expect("response");
    println!(
        "after declassification, bob sees: {:?}",
        String::from_utf8_lossy(&body)
    );

    // --- The label bookkeeping behind it all ---------------------------
    let idd = kernel.find_process("idd").unwrap();
    let netd = kernel.find_process("netd").unwrap();
    println!("\nlabel growth (the Figure 9 mechanism):");
    println!(
        "  idd send label: {} explicit handles (uT ⋆ + uG ⋆ per user)",
        kernel.process(idd).send_label.entry_count()
    );
    println!(
        "  netd receive label: {} explicit handles (one uT 3 raise per user)",
        kernel.process(netd).recv_label.entry_count()
    );
    println!(
        "  kernel: {} deliveries, {} drops, {} event processes",
        kernel.stats().delivered,
        kernel.stats().dropped_total(),
        kernel.stats().eps_created
    );
    println!(
        "  delivery cache: {} hits, {} misses ({} decisions cached, {} bytes)",
        kernel.stats().cache_hits,
        kernel.stats().cache_misses,
        kernel.delivery_cache_len(),
        kernel.kmem_report().delivery_cache_bytes
    );
    let per_shard: Vec<String> = (0..kernel.num_shards())
        .map(|i| {
            let shard = kernel.shard(i);
            format!(
                "shard {i}: {} delivered, {} Kcycles",
                shard.stats().delivered,
                shard.clock().now() / 1000
            )
        })
        .collect();
    println!("  {}", per_shard.join("; "));
    assert!(
        kernel.stats().cache_hits > 0,
        "repeated OKWS traffic must hit the delivery cache"
    );
    println!("\nokws_demo OK");
}
